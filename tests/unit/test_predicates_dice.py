"""Unit tests for the Dice and overlap-coefficient extension predicates."""

import pytest

from repro import Dataset, DicePredicate, OverlapCoefficientPredicate


@pytest.fixture
def data():
    return Dataset([(0, 1, 2, 3), (1, 2, 3, 4), (1, 2), (9,)])


class TestDice:
    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            DicePredicate(0.0)
        with pytest.raises(ValueError):
            DicePredicate(1.2)

    def test_threshold_formula(self, data):
        bound = DicePredicate(0.5).bind(data)
        assert bound.threshold(4.0, 4.0) == pytest.approx(2.0)

    def test_threshold_tightness(self, data):
        f = 0.7
        bound = DicePredicate(f).bind(data)
        for size_r in range(1, 7):
            for size_s in range(1, 7):
                for overlap in range(0, min(size_r, size_s) + 1):
                    dice = 2 * overlap / (size_r + size_s)
                    passes = overlap >= bound.threshold(size_r, size_s) - 1e-9
                    assert passes == (dice >= f - 1e-9)

    def test_verify_similarity_value(self, data):
        bound = DicePredicate(0.5).bind(data)
        ok, similarity = bound.verify(0, 1)
        assert ok
        assert similarity == pytest.approx(2 * 3 / 8)

    def test_band_filter_soundness(self, data):
        bound = DicePredicate(0.8).bind(data)
        band = bound.band_filter()
        # sizes 4 vs 2: max dice = 2*2/6 = 0.66 < 0.8, rejectable.
        assert not band.accepts(0, 2)
        assert band.accepts(0, 1)


class TestOverlapCoefficient:
    def test_threshold_uses_min_norm(self, data):
        bound = OverlapCoefficientPredicate(0.5).bind(data)
        assert bound.threshold(4.0, 2.0) == pytest.approx(1.0)
        assert bound.threshold(2.0, 4.0) == pytest.approx(1.0)

    def test_threshold_monotone(self, data):
        bound = OverlapCoefficientPredicate(0.5).bind(data)
        assert bound.threshold(2.0, 3.0) <= bound.threshold(2.0, 4.0)
        assert bound.threshold(2.0, 3.0) <= bound.threshold(3.0, 3.0)

    def test_contained_set_coefficient_one(self, data):
        bound = OverlapCoefficientPredicate(1.0).bind(data)
        ok, similarity = bound.verify(0, 2)
        assert ok
        assert similarity == pytest.approx(1.0)

    def test_no_band_filter(self, data):
        assert OverlapCoefficientPredicate(0.5).bind(data).band_filter() is None

    def test_verify_rejects(self, data):
        bound = OverlapCoefficientPredicate(0.9).bind(data)
        ok, _sim = bound.verify(0, 1)  # overlap 3, min size 4 -> 0.75
        assert not ok
