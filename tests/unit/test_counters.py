"""Unit tests for the work counters."""

from repro.utils.counters import CostCounters


class TestCostCounters:
    def test_defaults_are_zero(self):
        counters = CostCounters()
        assert counters.heap_pops == 0
        assert counters.pairs_output == 0
        assert counters.extra == {}

    def test_merge_adds_fields(self):
        a = CostCounters(heap_pops=3, pairs_output=1)
        b = CostCounters(heap_pops=4, binary_searches=2)
        a.merge(b)
        assert a.heap_pops == 7
        assert a.binary_searches == 2
        assert a.pairs_output == 1

    def test_merge_takes_max_of_peak(self):
        a = CostCounters(peak_pair_table=10)
        b = CostCounters(peak_pair_table=4)
        a.merge(b)
        assert a.peak_pair_table == 10
        b.merge(a)
        assert b.peak_pair_table == 10

    def test_merge_accumulates_extra(self):
        a = CostCounters(extra={"x": 1})
        b = CostCounters(extra={"x": 2, "y": 5})
        a.merge(b)
        assert a.extra == {"x": 3, "y": 5}

    def test_as_dict_includes_extra(self):
        counters = CostCounters(probes=2, extra={"batches": 3})
        snapshot = counters.as_dict()
        assert snapshot["probes"] == 2
        assert snapshot["batches"] == 3

    def test_total_work_sums_merge_quantities(self):
        counters = CostCounters(
            heap_pops=1, list_items_touched=2, binary_searches=3,
            pairs_generated=4, pairs_verified=5,
        )
        assert counters.total_work() == 15
