"""Unit tests for the work counters."""

from dataclasses import fields

from repro import OverlapPredicate
from repro.core.join import make_algorithm
from repro.core.records import Dataset
from repro.utils.counters import CostCounters


class TestCostCounters:
    def test_defaults_are_zero(self):
        counters = CostCounters()
        assert counters.heap_pops == 0
        assert counters.pairs_output == 0
        assert counters.extra == {}

    def test_merge_adds_fields(self):
        a = CostCounters(heap_pops=3, pairs_output=1)
        b = CostCounters(heap_pops=4, binary_searches=2)
        a.merge(b)
        assert a.heap_pops == 7
        assert a.binary_searches == 2
        assert a.pairs_output == 1

    def test_merge_takes_max_of_peak(self):
        a = CostCounters(peak_pair_table=10)
        b = CostCounters(peak_pair_table=4)
        a.merge(b)
        assert a.peak_pair_table == 10
        b.merge(a)
        assert b.peak_pair_table == 10

    def test_merge_accumulates_extra(self):
        a = CostCounters(extra={"x": 1})
        b = CostCounters(extra={"x": 2, "y": 5})
        a.merge(b)
        assert a.extra == {"x": 3, "y": 5}

    def test_as_dict_includes_extra(self):
        counters = CostCounters(probes=2, extra={"batches": 3})
        snapshot = counters.as_dict()
        assert snapshot["probes"] == 2
        assert snapshot["batches"] == 3

    def test_total_work_sums_merge_quantities(self):
        counters = CostCounters(
            heap_pops=1, list_items_touched=2, binary_searches=3,
            pairs_generated=4, pairs_verified=5,
        )
        assert counters.total_work() == 15

    def test_merge_covers_every_field(self):
        """Merge must not silently drop a newly added counter field.

        Every numeric field sums, except ``peak_pair_table`` which is a
        high-water mark and takes the max.
        """
        numeric = [f.name for f in fields(CostCounters) if f.name != "extra"]
        a = CostCounters(**{name: i + 1 for i, name in enumerate(numeric)})
        b = CostCounters(**{name: 2 * (i + 1) for i, name in enumerate(numeric)})
        a.merge(b)
        for i, name in enumerate(numeric):
            if name == "peak_pair_table":
                assert getattr(a, name) == 2 * (i + 1), name
            else:
                assert getattr(a, name) == 3 * (i + 1), name


def _shard_counters(algorithm_name, dataset, predicate, n_shards):
    """Run the serial algorithm once per shard window and merge counters."""
    merged = CostCounters()
    pairs = []
    base, remainder = divmod(len(dataset), n_shards)
    lo = 0
    for shard in range(n_shards):
        hi = lo + base + (1 if shard < remainder else 0)
        algorithm = make_algorithm(algorithm_name)
        algorithm.set_shard_window(lo, hi)
        result = algorithm.join(dataset, predicate)
        merged.merge(result.counters)
        pairs.extend(result.pairs)
        lo = hi
    return merged, pairs


class TestShardCounterAudit:
    """Shard-summed counters must reconcile with one serial run.

    This is the contract ``parallel_join`` relies on when it merges
    worker counters: probe-phase work partitions exactly across shard
    windows. Index-build work replays per shard, so build-side fields
    are compared with that replay factored in rather than ignored.
    """

    dataset = Dataset(
        [
            tuple(sorted({(7 * i + j * j) % 23 for j in range(3 + i % 5)}))
            for i in range(40)
        ]
    )
    predicate = OverlapPredicate(2)

    def test_naive_shard_sum_equals_serial(self):
        """Naive has no index, so every field reconciles exactly."""
        serial = make_algorithm("naive").join(self.dataset, self.predicate)
        merged, pairs = _shard_counters("naive", self.dataset, self.predicate, 4)
        assert sorted((p.rid_a, p.rid_b) for p in pairs) == sorted(
            serial.pair_set()
        )
        assert merged.as_dict() == serial.counters.as_dict()

    def test_probe_phase_counters_shard_sum_exactly(self):
        """For indexed algorithms the probe-side fields partition."""
        serial = make_algorithm("probe-count-optmerge").join(
            self.dataset, self.predicate
        )
        merged, _pairs = _shard_counters(
            "probe-count-optmerge", self.dataset, self.predicate, 4
        )
        for name in (
            "probes",
            "heap_pops",
            "heap_pushes",
            "list_items_touched",
            "binary_searches",
            "candidates_checked",
            "pairs_verified",
            "pairs_output",
        ):
            assert getattr(merged, name) == getattr(serial.counters, name), name

    def test_build_counters_replay_per_shard(self):
        """Index inserts replay once per shard — documented, not hidden."""
        serial = make_algorithm("probe-count-optmerge").join(
            self.dataset, self.predicate
        )
        merged, _pairs = _shard_counters(
            "probe-count-optmerge", self.dataset, self.predicate, 4
        )
        assert merged.index_entries == 4 * serial.counters.index_entries
