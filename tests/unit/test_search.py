"""Unit tests for the galloping binary search."""

from bisect import bisect_left

import pytest

from repro.utils.search import gallop_search, gallop_search_from


class TestGallopSearch:
    def test_empty_list(self):
        assert gallop_search([], 5) == 0

    def test_target_before_all(self):
        assert gallop_search([10, 20, 30], 5) == 0

    def test_target_after_all(self):
        assert gallop_search([10, 20, 30], 99) == 3

    def test_target_present_first(self):
        assert gallop_search([10, 20, 30], 10) == 0

    def test_target_present_middle(self):
        assert gallop_search([10, 20, 30], 20) == 1

    def test_target_present_last(self):
        assert gallop_search([10, 20, 30], 30) == 2

    def test_target_between(self):
        assert gallop_search([10, 20, 30], 25) == 2

    def test_single_element_hit(self):
        assert gallop_search([7], 7) == 0

    def test_single_element_miss_low(self):
        assert gallop_search([7], 3) == 0

    def test_single_element_miss_high(self):
        assert gallop_search([7], 9) == 1

    def test_long_list_matches_bisect(self):
        items = list(range(0, 1000, 3))
        for target in (0, 1, 2, 3, 500, 501, 997, 998, 1200, -5):
            assert gallop_search(items, target) == bisect_left(items, target)


class TestGallopSearchFrom:
    def test_start_beyond_end(self):
        assert gallop_search_from([1, 2, 3], 2, 5) == 3

    def test_start_at_end(self):
        assert gallop_search_from([1, 2, 3], 2, 3) == 3

    def test_start_exactly_at_target(self):
        assert gallop_search_from([1, 5, 9], 5, 1) == 1

    def test_start_past_target_position(self):
        # The caller guarantees the target is not before `start`;
        # searching past it just returns the next >= position.
        assert gallop_search_from([1, 5, 9], 1, 1) == 1

    def test_resumed_scans_are_consistent(self):
        items = list(range(0, 200, 2))
        position = 0
        for target in (0, 3, 50, 51, 120, 199, 300):
            position = gallop_search_from(items, target, position)
            assert position == bisect_left(items, target)

    def test_gallop_bracket_at_list_end(self):
        # Gallop overshoot past the end must clamp correctly.
        items = [1, 2, 3, 4, 5, 6, 7, 100]
        assert gallop_search_from(items, 100, 0) == 7
        assert gallop_search_from(items, 99, 0) == 7
        assert gallop_search_from(items, 101, 0) == 8

    def test_duplicate_free_sorted_required(self):
        # Works on any sorted list, including with gaps.
        items = [2, 4, 4, 4, 8]
        assert gallop_search_from(items, 4, 0) == bisect_left(items, 4)
