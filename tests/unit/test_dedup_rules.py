"""Unit tests for the rule-based structured-record matcher."""

import pytest

from repro import JaccardPredicate, OverlapPredicate
from repro.dedup import EditDistanceRule, FieldRule, RuleBasedMatcher

RECORDS = [
    {"name": "sunita sarawagi", "title": "efficient set joins on similarity predicates"},
    {"name": "sunita sarawagy", "title": "set joins on similarity predicates efficient"},
    {"name": "alok kirpal", "title": "efficient set joins on similarity predicates"},
    {"name": "jeff ullman", "title": "managing gigabytes compressing and indexing"},
    {"name": "jeff ullmann", "title": "totally different topic here entirely"},
]


class TestValidation:
    def test_needs_rules(self):
        with pytest.raises(ValueError):
            RuleBasedMatcher([])

    def test_vote_bounds(self):
        rule = FieldRule("title", JaccardPredicate(0.8))
        with pytest.raises(ValueError):
            RuleBasedMatcher([rule], combine=2)
        with pytest.raises(ValueError):
            RuleBasedMatcher([rule], combine=0)

    def test_combine_values(self):
        rule = FieldRule("title", JaccardPredicate(0.8))
        with pytest.raises(ValueError):
            RuleBasedMatcher([rule], combine="most")


class TestSingleRule:
    def test_title_rule(self):
        matcher = RuleBasedMatcher([FieldRule("title", JaccardPredicate(0.8))])
        result = matcher.match(RECORDS)
        assert result.pair_set() == {(0, 1), (0, 2), (1, 2)}

    def test_edit_rule(self):
        matcher = RuleBasedMatcher([EditDistanceRule("name", k=1)])
        result = matcher.match(RECORDS)
        assert result.pair_set() == {(0, 1), (3, 4)}


class TestCombinators:
    TITLE = FieldRule("title", JaccardPredicate(0.8))
    NAME = EditDistanceRule("name", k=1)

    def test_all_is_intersection(self):
        matcher = RuleBasedMatcher([self.TITLE, self.NAME], combine="all")
        result = matcher.match(RECORDS)
        assert result.pair_set() == {(0, 1)}

    def test_all_order_invariant(self):
        forward = RuleBasedMatcher([self.TITLE, self.NAME], combine="all").match(RECORDS)
        backward = RuleBasedMatcher([self.NAME, self.TITLE], combine="all").match(RECORDS)
        assert forward.pair_set() == backward.pair_set()

    def test_any_is_union(self):
        matcher = RuleBasedMatcher([self.TITLE, self.NAME], combine="any")
        result = matcher.match(RECORDS)
        assert result.pair_set() == {(0, 1), (0, 2), (1, 2), (3, 4)}

    def test_vote_one_equals_any(self):
        any_pairs = RuleBasedMatcher([self.TITLE, self.NAME], combine="any").match(RECORDS)
        vote_pairs = RuleBasedMatcher([self.TITLE, self.NAME], combine=1).match(RECORDS)
        assert any_pairs.pair_set() == vote_pairs.pair_set()

    def test_vote_n_equals_all(self):
        all_pairs = RuleBasedMatcher([self.TITLE, self.NAME], combine="all").match(RECORDS)
        vote_pairs = RuleBasedMatcher([self.TITLE, self.NAME], combine=2).match(RECORDS)
        assert all_pairs.pair_set() == vote_pairs.pair_set()


class TestGroups:
    def test_groups(self):
        matcher = RuleBasedMatcher([FieldRule("title", JaccardPredicate(0.8))])
        assert matcher.groups(RECORDS) == [[0, 1, 2]]

    def test_missing_field_treated_as_empty(self):
        records = [{"title": "alpha beta gamma"}, {"other": "x"}, {"title": "alpha beta gamma"}]
        matcher = RuleBasedMatcher([FieldRule("title", JaccardPredicate(0.9))])
        assert matcher.match(records).pair_set() == {(0, 2)}

    def test_predicate_description(self):
        matcher = RuleBasedMatcher([self_rule()], combine="any")
        result = matcher.match(RECORDS)
        assert "title" in result.predicate
        assert "combine=any" in result.predicate


def self_rule():
    return FieldRule("title", OverlapPredicate(4))
