"""Unit tests for the pInfo partition-information store."""

import pytest

from repro.partition.pinfo import PartitionEntry, PartitionInfoStore


class TestPartitionEntry:
    def test_roundtrip_with_joins(self):
        entry = PartitionEntry(position=3, rid=7, home=2, joins=(1, 2, 5))
        assert PartitionEntry.from_line(entry.to_line()) == entry

    def test_roundtrip_without_joins(self):
        entry = PartitionEntry(position=0, rid=0, home=0, joins=())
        assert PartitionEntry.from_line(entry.to_line()) == entry

    def test_home_minus_one_roundtrip(self):
        entry = PartitionEntry(position=1, rid=2, home=-1, joins=(4,))
        assert PartitionEntry.from_line(entry.to_line()) == entry

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            PartitionEntry.from_line("1 2")


class TestPartitionInfoStore:
    def make_store(self, tmp_path, entries):
        store = PartitionInfoStore(str(tmp_path / "pinfo.dat"))
        for entry in entries:
            store.append(entry)
        store.finish()
        return store

    def test_scan_preserves_order(self, tmp_path):
        entries = [
            PartitionEntry(0, 10, 0, (0,)),
            PartitionEntry(1, 11, 1, ()),
            PartitionEntry(2, 12, 0, (0, 1)),
        ]
        store = self.make_store(tmp_path, entries)
        assert list(store.scan()) == entries

    def test_scan_before_finish_rejected(self, tmp_path):
        store = PartitionInfoStore(str(tmp_path / "pinfo.dat"))
        store.append(PartitionEntry(0, 0, 0, ()))
        with pytest.raises(ValueError):
            list(store.scan())

    def test_append_after_finish_rejected(self, tmp_path):
        store = self.make_store(tmp_path, [])
        with pytest.raises(ValueError):
            store.append(PartitionEntry(0, 0, 0, ()))

    def test_split_routes_by_home_and_joins(self, tmp_path):
        entries = [
            PartitionEntry(0, 10, 0, ()),        # home cluster 0 -> batch 0
            PartitionEntry(1, 11, 1, (0,)),      # home 1 (batch 1), joins 0 (batch 0)
            PartitionEntry(2, 12, 0, (1,)),      # home 0, joins 1
        ]
        store = self.make_store(tmp_path, entries)
        paths = store.split({0: 0, 1: 1}, n_batches=2)
        batch0 = list(PartitionInfoStore.scan_file(paths[0]))
        batch1 = list(PartitionInfoStore.scan_file(paths[1]))
        # batch 0 sees entry0 (home), entry1 (join-only, home masked),
        # entry2 (home).
        assert [e.rid for e in batch0] == [10, 11, 12]
        assert batch0[1].home == -1
        assert batch0[1].joins == (0,)
        assert batch0[2].joins == ()
        # batch 1 sees entry1 (home) and entry2 (join-only).
        assert [e.rid for e in batch1] == [11, 12]
        assert batch1[0].home == 1
        assert batch1[1].home == -1
        assert batch1[1].joins == (1,)

    def test_split_preserves_scan_order_within_batches(self, tmp_path):
        entries = [PartitionEntry(i, 100 + i, 0, ()) for i in range(10)]
        store = self.make_store(tmp_path, entries)
        [path] = store.split({0: 0}, n_batches=1)
        positions = [e.position for e in PartitionInfoStore.scan_file(path)]
        assert positions == sorted(positions)

    def test_n_entries(self, tmp_path):
        store = self.make_store(
            tmp_path, [PartitionEntry(i, i, 0, ()) for i in range(5)]
        )
        assert store.n_entries == 5
