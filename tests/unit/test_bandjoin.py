"""Unit tests for the §5.3 band-join partitioners."""

import random

import pytest

from repro.partition.bandjoin import (
    greedy_partitions,
    optimal_partitions,
    partition_cost,
    simple_partitions,
)


def covers_all_band_pairs(keys, radius, partitions):
    """Every pair within the band must share at least one partition."""
    membership = [set() for _ in keys]
    for pidx, partition in enumerate(partitions):
        for rid in partition:
            membership[rid].add(pidx)
    for a in range(len(keys)):
        for b in range(a + 1, len(keys)):
            if abs(keys[a] - keys[b]) <= radius:
                if not (membership[a] & membership[b]):
                    return False
    return True


KEYS_CASES = [
    [1.0, 2.0, 3.0, 10.0, 11.0, 12.0],
    [5.0] * 6,
    [float(i) for i in range(20)],
    [0.0, 100.0],
    [3.0],
    [],
]


class TestSimplePartitions:
    @pytest.mark.parametrize("keys", KEYS_CASES)
    def test_coverage(self, keys):
        partitions = simple_partitions(keys, radius=2.0)
        assert covers_all_band_pairs(keys, 2.0, partitions)

    def test_all_records_present(self):
        keys = [4.0, 1.0, 9.0, 2.0]
        partitions = simple_partitions(keys, radius=1.5)
        assert sorted({rid for p in partitions for rid in p}) == [0, 1, 2, 3]

    def test_tight_radius_many_partitions(self):
        keys = [float(i * 10) for i in range(5)]
        partitions = simple_partitions(keys, radius=1.0)
        assert len(partitions) == 5

    def test_wide_radius_single_partition(self):
        keys = [1.0, 2.0, 3.0]
        partitions = simple_partitions(keys, radius=10.0)
        assert len(partitions) == 1


class TestGreedyPartitions:
    @pytest.mark.parametrize("keys", KEYS_CASES)
    def test_coverage(self, keys):
        partitions = greedy_partitions(keys, radius=2.0)
        assert covers_all_band_pairs(keys, 2.0, partitions)

    def test_merges_heavily_overlapping_windows(self):
        # Dense keys make adjacent windows nearly identical; merging wins.
        keys = [i * 0.1 for i in range(30)]
        simple = simple_partitions(keys, radius=1.0)
        greedy = greedy_partitions(keys, radius=1.0)
        assert len(greedy) <= len(simple)

    def test_randomized_coverage(self):
        rng = random.Random(17)
        for _ in range(20):
            keys = [rng.uniform(0, 30) for _ in range(rng.randint(0, 40))]
            radius = rng.uniform(0.1, 8.0)
            assert covers_all_band_pairs(keys, radius, greedy_partitions(keys, radius))


class TestOptimalPartitions:
    @pytest.mark.parametrize("keys", KEYS_CASES)
    def test_coverage(self, keys):
        partitions = optimal_partitions(keys, radius=2.0)
        assert covers_all_band_pairs(keys, 2.0, partitions)

    def test_cost_ordering(self):
        """optimal <= greedy; both cover; simple covers too."""
        rng = random.Random(18)
        for _ in range(20):
            keys = [rng.uniform(0, 20) for _ in range(rng.randint(2, 35))]
            radius = rng.uniform(0.2, 6.0)
            cost_simple = partition_cost(simple_partitions(keys, radius))
            cost_greedy = partition_cost(greedy_partitions(keys, radius))
            cost_optimal = partition_cost(optimal_partitions(keys, radius))
            assert cost_optimal <= cost_greedy + 1e-9
            assert cost_greedy <= cost_simple * 1.0 + 1e-9 or cost_greedy <= cost_simple + 1e-9

    def test_optimal_beats_brute_force_enumeration(self):
        """DP answer equals exhaustive search over window merges."""
        import itertools

        keys = [0.0, 1.0, 2.0, 5.0, 6.0, 10.0]
        radius = 2.0
        from repro.partition.bandjoin import _windows

        order, spans = _windows(keys, radius)
        n = len(spans)
        best = float("inf")
        # enumerate all ways to cut the window sequence into runs
        for cuts in itertools.product([0, 1], repeat=n - 1):
            boundaries = [0] + [i + 1 for i, c in enumerate(cuts) if c] + [n]
            total = 0.0
            for lo, hi in zip(boundaries, boundaries[1:]):
                run = spans[hi - 1][1] - spans[lo][0]
                total += float(run) ** 2
            best = min(best, total)
        assert partition_cost(optimal_partitions(keys, radius)) == pytest.approx(best)


class TestPartitionCost:
    def test_quadratic_default(self):
        assert partition_cost([[1, 2, 3], [4]]) == 10.0

    def test_custom_cost(self):
        assert partition_cost([[1, 2], [3]], cost=lambda n: n) == 3.0
