"""Unit tests for the disk-resident inverted index."""

import pytest

from repro import (
    Dataset,
    JaccardPredicate,
    NaiveJoin,
    OverlapPredicate,
    WeightedOverlapPredicate,
)
from repro.runtime.errors import SnapshotCorrupted
from repro.storage.disk_index import DiskInvertedIndex, DiskProbeJoin
from tests.conftest import random_dataset


@pytest.fixture
def data():
    return Dataset([(0, 1, 2), (1, 2, 3), (0, 3), (5,)])


class TestDiskInvertedIndex:
    def test_build_and_read(self, data, tmp_path):
        bound = OverlapPredicate(2).bind(data)
        index = DiskInvertedIndex.build(data, bound, str(tmp_path / "ix.bin"))
        assert index.read_posting(1) == [0, 1]
        assert index.read_posting(0) == [0, 2]
        assert index.read_posting(5) == [3]
        assert index.read_posting(99) == []
        index.close()

    def test_n_entries_and_min_norm(self, data, tmp_path):
        bound = OverlapPredicate(2).bind(data)
        index = DiskInvertedIndex.build(data, bound, str(tmp_path / "ix.bin"))
        assert index.n_entries == data.total_word_occurrences()
        assert index.min_norm == 1.0
        index.close()

    def test_open_roundtrip(self, data, tmp_path):
        path = str(tmp_path / "ix.bin")
        bound = OverlapPredicate(2).bind(data)
        DiskInvertedIndex.build(data, bound, path).close()
        reopened = DiskInvertedIndex.open(path)
        assert reopened.read_posting(1) == [0, 1]
        assert reopened.min_norm == 1.0
        assert reopened.n_entries == data.total_word_occurrences()
        reopened.close()

    def test_open_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"definitely not an index" + bytes(64))
        with pytest.raises(SnapshotCorrupted):
            DiskInvertedIndex.open(str(path))

    def test_open_rejects_format_version_1(self, tmp_path):
        # The pre-unification RPIX varbyte layout: refused with a clear
        # rebuild message, not misread.
        path = tmp_path / "old.bin"
        path.write_bytes(b"RPIX1\n" + bytes(64))
        with pytest.raises(SnapshotCorrupted, match="version 1"):
            DiskInvertedIndex.open(str(path))

    def test_probe_lists(self, data, tmp_path):
        bound = OverlapPredicate(2).bind(data)
        index = DiskInvertedIndex.build(data, bound, str(tmp_path / "ix.bin"))
        lists = index.probe_lists((0, 1, 9), (1.0, 1.0, 1.0))
        assert [list(plist.ids) for plist, _score in lists] == [[0, 2], [0, 1]]
        assert index.lists_read >= 2
        assert index.bytes_read > 0
        index.close()

    def test_rejects_weighted(self, data, tmp_path):
        bound = WeightedOverlapPredicate(2.0).bind(data)
        with pytest.raises(ValueError):
            DiskInvertedIndex.build(data, bound, str(tmp_path / "ix.bin"))

    def test_unlink(self, data, tmp_path):
        path = tmp_path / "ix.bin"
        bound = OverlapPredicate(2).bind(data)
        index = DiskInvertedIndex.build(data, bound, str(path))
        index.unlink()
        assert not path.exists()

    def test_random_roundtrip(self, tmp_path):
        data = random_dataset(seed=90)
        bound = OverlapPredicate(2).bind(data)
        index = DiskInvertedIndex.build(data, bound, str(tmp_path / "ix.bin"))
        expected: dict[int, list[int]] = {}
        for rid, record in enumerate(data.records):
            for token in record:
                expected.setdefault(token, []).append(rid)
        for token, ids in expected.items():
            assert index.read_posting(token) == ids
        index.close()


class TestDiskProbeJoin:
    def test_equivalence_with_naive(self):
        data = random_dataset(seed=91)
        predicate = OverlapPredicate(4)
        truth = NaiveJoin().join(data, predicate).pair_set()
        result = DiskProbeJoin().join(data, predicate)
        assert result.pair_set() == truth
        assert result.counters.extra["disk_lists_read"] > 0

    def test_jaccard_equivalence(self):
        data = random_dataset(seed=92)
        predicate = JaccardPredicate(0.6)
        truth = NaiveJoin().join(data, predicate).pair_set()
        assert DiskProbeJoin().join(data, predicate).pair_set() == truth

    @pytest.mark.parametrize("backend", ["heap", "accumulator"])
    def test_merge_backend_equivalence(self, backend):
        data = random_dataset(seed=94)
        predicate = JaccardPredicate(0.6)
        truth = DiskProbeJoin().join(data, predicate).pair_set()
        result = DiskProbeJoin(merge_backend=backend).join(data, predicate)
        assert result.pair_set() == truth

    def test_explicit_path_kept(self, tmp_path):
        data = random_dataset(seed=93, n_base=20)
        path = tmp_path / "kept.bin"
        DiskProbeJoin(path=str(path)).join(data, OverlapPredicate(3))
        assert path.exists()
        reopened = DiskInvertedIndex.open(str(path))
        assert reopened.n_entries == data.total_word_occurrences()
        reopened.close()
