"""Unit tests for the FP-growth miner."""

import pytest

from repro.mining.apriori import AprioriMiner
from repro.mining.fpgrowth import fpgrowth


class TestFPGrowth:
    TRANSACTIONS = [
        (1, 2, 3),
        (1, 2),
        (1, 3),
        (2, 3),
        (1, 2, 3),
    ]

    def test_min_support_validation(self):
        with pytest.raises(ValueError):
            fpgrowth([], min_support=0)

    def test_known_supports(self):
        result = fpgrowth(self.TRANSACTIONS, min_support=2)
        assert result[(1,)] == 4
        assert result[(1, 2)] == 3
        assert result[(1, 2, 3)] == 2

    def test_infrequent_excluded(self):
        result = fpgrowth([(1, 2), (1, 3), (1, 4)], min_support=2)
        assert (2,) not in result
        assert (1,) in result

    def test_matches_apriori_on_fixture(self):
        apriori = AprioriMiner(min_support=2).mine(self.TRANSACTIONS)
        fp = fpgrowth(self.TRANSACTIONS, min_support=2)
        assert set(fp) == set(apriori)
        for itemset, support in fp.items():
            assert support == len(apriori[itemset])

    def test_matches_apriori_randomized(self):
        import random

        rng = random.Random(31)
        for trial in range(15):
            transactions = [
                tuple(rng.sample(range(8), rng.randint(1, 6)))
                for _ in range(rng.randint(3, 15))
            ]
            support = rng.randint(2, 4)
            apriori = AprioriMiner(min_support=support).mine(transactions)
            fp = fpgrowth(transactions, min_support=support)
            assert set(fp) == set(apriori), f"trial {trial}"
            for itemset in fp:
                assert fp[itemset] == len(apriori[itemset]), f"trial {trial}"

    def test_empty(self):
        assert fpgrowth([], min_support=2) == {}

    def test_single_transaction_support_one(self):
        result = fpgrowth([(1, 2)], min_support=1)
        assert result == {(1,): 1, (2,): 1, (1, 2): 1}
