"""Unit tests for MergeOpt (Algorithm 1/3)."""

import random

from repro.core.heap_merge import heap_merge
from repro.core.inverted_index import PostingList
from repro.core.merge_opt import merge_opt, split_lists
from repro.utils.counters import CostCounters


def make_list(entries):
    plist = PostingList()
    for entity_id, score in entries:
        plist.append(entity_id, score)
    return plist


def unit_lists(id_lists):
    return [(make_list([(i, 1.0) for i in ids]), 1.0) for ids in id_lists]


class TestSplitLists:
    def test_orders_by_decreasing_length(self):
        lists = unit_lists([[0], [0, 1, 2], [0, 1]])
        ordered, cumulative, _k = split_lists(lists, 0.5)
        assert [len(p) for p, _s in ordered] == [3, 2, 1]
        assert cumulative == [1.0, 2.0, 3.0]

    def test_k_is_maximal_prefix_below_threshold(self):
        lists = unit_lists([[0, 1, 2], [0, 1], [0]])
        _ordered, _cum, k = split_lists(lists, 2.5)
        assert k == 2  # lists of cumulative weight 1, 2 < 2.5; third hits 3

    def test_k_zero_when_threshold_tiny(self):
        lists = unit_lists([[0, 1, 2]])
        assert split_lists(lists, 0.5)[2] == 0

    def test_k_all_when_threshold_unreachable(self):
        lists = unit_lists([[0], [1]])
        assert split_lists(lists, 10.0)[2] == 2


class TestMergeOpt:
    def test_matches_heap_merge_simple(self):
        lists = unit_lists([[0, 1, 2, 3], [1, 3], [3]])
        expected = heap_merge(lists, lambda _s: 2.0, CostCounters())
        got = merge_opt(lists, 2.0, lambda _s: 2.0, CostCounters())
        assert got == expected

    def test_skips_long_list_work(self):
        # One huge list + two tiny ones; threshold 2 puts the huge list in L.
        huge = [(i, 1.0) for i in range(1000)]
        lists = [
            (make_list(huge), 1.0),
            (make_list([(5, 1.0), (999, 1.0)]), 1.0),
            (make_list([(5, 1.0)]), 1.0),
        ]
        counters = CostCounters()
        out = merge_opt(lists, 2.0, lambda _s: 2.0, counters)
        assert (5, 3.0) in out
        assert (999, 2.0) in out
        # The 1000-entry list was never heap-merged.
        assert counters.heap_pops <= 6
        assert counters.binary_searches >= 1

    def test_early_termination_bound_is_respected(self):
        # Candidate weight 1 from S; two L lists of weight 1 each;
        # threshold 3.5 unreachable -> candidate dropped.
        lists = [
            (make_list([(7, 1.0), (8, 1.0)]), 1.0),
            (make_list([(7, 1.0), (9, 1.0)]), 1.0),
            (make_list([(7, 1.0)]), 1.0),
        ]
        out = merge_opt(lists, 3.5, lambda _s: 3.5, CostCounters())
        assert out == []

    def test_weights_of_accepted_candidates_are_complete(self):
        # Even when a candidate qualifies from S alone, L contributions
        # must still be added for the reported weight.
        long = [(i, 1.0) for i in range(50)]
        lists = [
            (make_list(long), 1.0),
            (make_list([(10, 1.0)]), 1.0),
            (make_list([(10, 1.0)]), 1.0),
        ]
        out = merge_opt(lists, 2.0, lambda _s: 2.0, CostCounters())
        assert out == [(10, 3.0)]

    def test_accept_filter(self):
        lists = unit_lists([[0, 1], [0, 1]])
        out = merge_opt(lists, 2.0, lambda _s: 2.0, CostCounters(), accept=lambda s: s == 1)
        assert out == [(1, 2.0)]

    def test_empty_input(self):
        assert merge_opt([], 1.0, lambda _s: 1.0, CostCounters()) == []

    def test_equivalence_with_heap_merge_randomized(self):
        rng = random.Random(11)
        for trial in range(30):
            n_lists = rng.randint(1, 8)
            lists = []
            for _ in range(n_lists):
                ids = sorted(rng.sample(range(40), rng.randint(1, 25)))
                lists.append((make_list([(i, 1.0) for i in ids]), 1.0))
            threshold = rng.uniform(1.0, 5.0)
            expected = heap_merge(lists, lambda _s: threshold, CostCounters())
            got = merge_opt(lists, threshold, lambda _s: threshold, CostCounters())
            assert got == expected, f"trial {trial}"

    def test_equivalence_with_weighted_scores_randomized(self):
        rng = random.Random(12)
        for trial in range(30):
            n_lists = rng.randint(1, 6)
            lists = []
            for _ in range(n_lists):
                ids = sorted(rng.sample(range(30), rng.randint(1, 20)))
                entries = [(i, rng.uniform(0.1, 2.0)) for i in ids]
                lists.append((make_list(entries), rng.uniform(0.1, 2.0)))
            threshold = rng.uniform(0.5, 4.0)
            expected = {
                e: w for e, w in heap_merge(lists, lambda _s: threshold, CostCounters())
            }
            got = {
                e: w for e, w in merge_opt(lists, threshold, lambda _s: threshold, CostCounters())
            }
            assert set(got) == set(expected), f"trial {trial}"
            for entity, weight in got.items():
                assert abs(weight - expected[entity]) < 1e-9
