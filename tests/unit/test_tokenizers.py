"""Unit tests for word and q-gram tokenizers."""

import pytest

from repro.text.tokenizers import normalize, qgrams, tokenize_qgrams, tokenize_words


class TestNormalize:
    def test_lowercases(self):
        assert normalize("Hello WORLD") == "hello world"

    def test_collapses_whitespace(self):
        assert normalize("  a \t b \n c ") == "a b c"


class TestTokenizeWords:
    def test_basic_split(self):
        assert tokenize_words("efficient set joins") == ["efficient", "set", "joins"]

    def test_deduplicates_preserving_order(self):
        assert tokenize_words("set a set b set") == ["set", "a", "b"]

    def test_strips_punctuation(self):
        assert tokenize_words("joins, sets; (predicates)") == ["joins", "sets", "predicates"]

    def test_keeps_numbers(self):
        assert tokenize_words("sigmod 2004 pages 743-754") == ["sigmod", "2004", "pages", "743", "754"]

    def test_empty_string(self):
        assert tokenize_words("") == []


class TestQgrams:
    def test_padded_count_is_n_plus_q_minus_1(self):
        for text in ("a", "ab", "abcdef"):
            assert len(qgrams(text, q=3, pad=True)) == len(text) + 2

    def test_padded_content(self):
        assert qgrams("ab", q=3, pad=True) == ["##a", "#ab", "ab$", "b$$"]

    def test_unpadded(self):
        assert qgrams("abcd", q=3, pad=False) == ["abc", "bcd"]

    def test_unpadded_short_string(self):
        assert qgrams("ab", q=3, pad=False) == ["ab"]

    def test_empty_string_padded(self):
        # Padding alone still produces boundary grams.
        grams = qgrams("", q=3, pad=True)
        assert grams == ["##$", "#$$"]

    def test_empty_string_unpadded(self):
        assert qgrams("", q=3, pad=False) == []

    def test_q1(self):
        assert qgrams("abc", q=1, pad=False) == ["a", "b", "c"]

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            qgrams("abc", q=0)


class TestTokenizeQgrams:
    def test_normalizes_and_dedupes(self):
        grams = tokenize_qgrams("AAA aaa", q=3)
        assert len(grams) == len(set(grams))
        assert "aaa" in grams

    def test_matches_qgram_set(self):
        text = "pune 411001"
        assert set(tokenize_qgrams(text)) == set(qgrams(normalize(text), q=3, pad=True))
