"""Unit tests for the naive baseline itself."""

import itertools

from repro import Dataset, JaccardPredicate, NaiveJoin, OverlapPredicate
from tests.conftest import random_dataset


class TestNaive:
    def test_overlap_semantics_by_hand(self):
        data = Dataset([(0, 1, 2), (1, 2, 3), (4, 5, 6)])
        result = NaiveJoin().join(data, OverlapPredicate(2))
        assert result.pair_set() == {(0, 1)}

    def test_all_pairs_when_threshold_one_and_shared(self):
        data = Dataset([(0,), (0,), (0,)])
        result = NaiveJoin().join(data, OverlapPredicate(1))
        assert result.pair_set() == {(0, 1), (0, 2), (1, 2)}

    def test_band_filter_path_matches_unfiltered_semantics(self):
        """The banded scan must find exactly the pairs a full scan does."""
        data = random_dataset(seed=21)
        predicate = JaccardPredicate(0.6)
        bound = predicate.bind(data)
        expected = set()
        for rid_a, rid_b in itertools.combinations(range(len(data)), 2):
            ok, _sim = bound.verify(rid_a, rid_b)
            if ok:
                expected.add((rid_a, rid_b))
        assert NaiveJoin().join(data, predicate).pair_set() == expected

    def test_similarity_values_reported(self):
        data = Dataset([(0, 1, 2, 3), (0, 1, 2, 4)])
        result = NaiveJoin().join(data, JaccardPredicate(0.5))
        assert len(result.pairs) == 1
        assert abs(result.pairs[0].similarity - 3 / 5) < 1e-12

    def test_counters_count_verifications(self):
        data = Dataset([(0,), (1,), (2,)])
        result = NaiveJoin().join(data, OverlapPredicate(1))
        assert result.counters.pairs_verified == 3
        assert result.pairs == []
