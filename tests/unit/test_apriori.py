"""Unit tests for the Apriori miner."""

import pytest

from repro.mining.apriori import AprioriMiner, generate_candidates, intersect_sorted


class TestIntersectSorted:
    def test_basic(self):
        assert intersect_sorted([1, 3, 5], [3, 4, 5]) == [3, 5]

    def test_disjoint(self):
        assert intersect_sorted([1, 2], [3, 4]) == []

    def test_empty(self):
        assert intersect_sorted([], [1]) == []
        assert intersect_sorted([1], []) == []

    def test_identical(self):
        assert intersect_sorted([1, 2, 3], [1, 2, 3]) == [1, 2, 3]


class TestGenerateCandidates:
    def test_joins_shared_prefix(self):
        level = [(1, 2), (1, 3), (2, 3)]
        candidates = {c for c, _a, _b in generate_candidates(level)}
        assert candidates == {(1, 2, 3)}

    def test_no_join_without_shared_prefix(self):
        level = [(1, 2), (3, 4)]
        assert list(generate_candidates(level)) == []

    def test_singletons_pair_up(self):
        level = [(1,), (2,), (3,)]
        candidates = {c for c, _a, _b in generate_candidates(level)}
        assert candidates == {(1, 2), (1, 3), (2, 3)}

    def test_parents_reported(self):
        level = [(1, 2), (1, 3)]
        [(candidate, parent_a, parent_b)] = list(generate_candidates(level))
        assert candidate == (1, 2, 3)
        assert {parent_a, parent_b} == {(1, 2), (1, 3)}


class TestAprioriMiner:
    TRANSACTIONS = [
        (1, 2, 3),
        (1, 2),
        (1, 3),
        (2, 3),
        (1, 2, 3),
    ]

    def test_min_support_validation(self):
        with pytest.raises(ValueError):
            AprioriMiner(min_support=0)

    def test_first_level(self):
        level = AprioriMiner(min_support=3).first_level(self.TRANSACTIONS)
        assert set(level) == {(1,), (2,), (3,)}
        assert level[(1,)] == [0, 1, 2, 4]

    def test_mine_with_support_three(self):
        result = AprioriMiner(min_support=3).mine(self.TRANSACTIONS)
        assert set(result) == {(1,), (2,), (3,), (1, 2), (1, 3), (2, 3)}
        assert result[(1, 2)] == [0, 1, 4]

    def test_mine_with_support_two_reaches_triple(self):
        result = AprioriMiner(min_support=2).mine(self.TRANSACTIONS)
        assert (1, 2, 3) in result
        assert result[(1, 2, 3)] == [0, 4]

    def test_max_items_caps_levels(self):
        result = AprioriMiner(min_support=2, max_items=1).mine(self.TRANSACTIONS)
        assert all(len(itemset) == 1 for itemset in result)

    def test_tidlists_sorted(self):
        result = AprioriMiner(min_support=2).mine(self.TRANSACTIONS)
        for tids in result.values():
            assert tids == sorted(tids)

    def test_duplicate_items_in_transaction_counted_once(self):
        result = AprioriMiner(min_support=2).mine([(1, 1, 2), (1, 2)])
        assert result[(1,)] == [0, 1]

    def test_empty_transactions(self):
        assert AprioriMiner(min_support=2).mine([]) == {}
