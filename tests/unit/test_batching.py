"""Unit tests for the phase-2 batch planner."""

import pytest

from repro.partition.batching import plan_batches


class TestPlanBatches:
    def test_budget_validation(self):
        with pytest.raises(ValueError):
            plan_batches([1], 0)

    def test_everything_fits_one_batch(self):
        assert plan_batches([3, 3, 3], 10) == [0, 0, 0]

    def test_splits_when_full(self):
        assert plan_batches([4, 4, 4], 8) == [0, 0, 1]

    def test_single_oversized_cluster_gets_own_batch(self):
        assert plan_batches([20, 1], 10) == [0, 1]

    def test_oversized_in_middle(self):
        assert plan_batches([5, 20, 5], 10) == [0, 1, 2]

    def test_batches_respect_budget_except_oversized(self):
        sizes = [3, 7, 2, 9, 1, 1, 4]
        budget = 10
        assignment = plan_batches(sizes, budget)
        totals: dict[int, int] = {}
        for size, batch in zip(sizes, assignment):
            totals[batch] = totals.get(batch, 0) + size
        for batch, total in totals.items():
            members = [s for s, b in zip(sizes, assignment) if b == batch]
            if len(members) > 1:
                assert total <= budget

    def test_batch_indices_contiguous(self):
        assignment = plan_batches([5, 5, 5, 5], 10)
        assert sorted(set(assignment)) == list(range(max(assignment) + 1))

    def test_empty(self):
        assert plan_batches([], 10) == []
