"""Unit coverage for the bitmap-signature pruning layer (repro.filters)."""

import pytest

from repro import (
    CosinePredicate,
    Dataset,
    EditDistancePredicate,
    JaccardPredicate,
    OverlapPredicate,
)
from repro.filters import (
    AdaptiveController,
    BitmapFilterConfig,
    BitmapPruner,
    NullController,
    SignatureStore,
    adapter_for,
    bit_for_token,
    resolve_bitmap_filter,
)
from repro.predicates.edit_distance import qgram_dataset
from repro.utils.counters import CostCounters

RECORDS = [
    (0, 1, 2, 3),
    (1, 2, 3, 4),
    (10, 11, 12),
    (0, 1, 2, 3, 4, 5),
    (20,),
]


class TestBitAssignment:
    def test_in_range_and_deterministic(self):
        for width in (8, 16, 64, 128, 300):
            positions = [bit_for_token(t, width) for t in range(200)]
            assert all(0 <= p < width for p in positions)
            assert positions == [bit_for_token(t, width) for t in range(200)]

    def test_spreads_consecutive_ids(self):
        # Fibonacci hashing should not map consecutive ids to one bit.
        assert len({bit_for_token(t, 128) for t in range(64)}) > 32


class TestConfig:
    def test_defaults(self):
        config = BitmapFilterConfig()
        assert config.width == 128
        assert config.adaptive

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"width": 7},
            {"width": 0},
            {"sample_size": 0},
            {"min_reject_rate": -0.1},
            {"min_reject_rate": 1.5},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            BitmapFilterConfig(**kwargs)

    def test_resolve(self):
        assert resolve_bitmap_filter(None) is None
        assert resolve_bitmap_filter(False) is None
        assert resolve_bitmap_filter(True) == BitmapFilterConfig()
        assert resolve_bitmap_filter(64) == BitmapFilterConfig(width=64)
        config = BitmapFilterConfig(width=32, adaptive=False)
        assert resolve_bitmap_filter(config) is config
        with pytest.raises(TypeError):
            resolve_bitmap_filter("wide")


class TestSignatureStore:
    def _store(self, width=64):
        bound = OverlapPredicate(2).bind(Dataset(list(RECORDS)))
        return SignatureStore.build(bound, width), bound

    def test_weight_cap_bounds_intersection(self):
        # Unit scores (overlap): cap must dominate |r ∩ s| for all pairs
        # at every width, including widths narrow enough to collide.
        for width in (8, 16, 64):
            store, _ = self._store(width)
            for a in range(len(RECORDS)):
                for b in range(len(RECORDS)):
                    truth = len(set(RECORDS[a]) & set(RECORDS[b]))
                    assert store.weight_cap(a, b) >= truth

    def test_cap_never_exceeds_smaller_size(self):
        store, _ = self._store()
        for a in range(len(RECORDS)):
            for b in range(len(RECORDS)):
                cap = store.weight_cap(a, b)
                assert cap <= min(len(RECORDS[a]), len(RECORDS[b]))

    def test_disjoint_records_capped_by_collisions_only(self):
        store, _ = self._store(width=4096)
        # At 4096 bits these token ids cannot collide: disjoint sets
        # must get a zero cap.
        assert store.weight_cap(0, 4) == 0.0

    def test_probe_entry_matches_stored_entry(self):
        store, bound = self._store()
        for rid, record in enumerate(RECORDS):
            entry = store.components_for(
                record, bound.cached_score_vector(rid)
            )
            assert entry == store.entry(rid)
            for other in range(len(RECORDS)):
                assert store.weight_cap_entry(entry, other) == store.weight_cap(
                    rid, other
                )

    def test_extend_from_appends_only_new(self):
        bound = OverlapPredicate(2).bind(Dataset(list(RECORDS)))
        store = SignatureStore(64)
        store.extend_from(bound, 0)
        before = [store.entry(rid) for rid in range(len(RECORDS))]
        store2 = SignatureStore(64)
        store2.extend_from(bound, 3)
        assert len(store2) == len(RECORDS) - 3
        assert store2.entry(0) == before[3]

    def test_restore_round_trip(self):
        store, bound = self._store()
        restored = SignatureStore.restore(64, store.signatures(), bound)
        assert len(restored) == len(store)
        for rid in range(len(RECORDS)):
            assert restored.entry(rid) == store.entry(rid)


class TestAdapterDispatch:
    def test_constant_threshold_predicates(self):
        data = Dataset(list(RECORDS))
        for predicate in (OverlapPredicate(2), CosinePredicate(0.5)):
            adapter = adapter_for(predicate.bind(data))
            assert adapter is not None and adapter.constant_threshold

    def test_norm_dependent_predicates(self):
        adapter = adapter_for(JaccardPredicate(0.5).bind(Dataset(list(RECORDS))))
        assert adapter is not None and not adapter.constant_threshold

    def test_edit_distance_requires_qgram_flag(self):
        bound = EditDistancePredicate(k=1).bind(qgram_dataset(["abcdef", "abcdeg"]))
        assert bound.bitmap_qgram_bound
        adapter = adapter_for(bound)
        assert adapter is not None and adapter.name == "edit-distance"

    def test_unknown_predicate_stays_off(self):
        class _Opaque:
            use_signature_prefilter = False

            def similarity_name(self):
                return "mystery-metric"

        assert adapter_for(_Opaque()) is None


class TestControllers:
    def test_null_controller_always_active(self):
        controller = NullController()
        assert controller.active and controller.decided

    def test_adaptive_disables_on_low_reject_rate(self):
        controller = AdaptiveController(sample_size=10, min_reject_rate=0.5)
        counters = CostCounters()
        for _ in range(10):
            controller.observe(False, counters)
        assert controller.decided and not controller.active
        assert counters.extra["bitmap_disabled"] == 1

    def test_adaptive_stays_on_when_paying(self):
        controller = AdaptiveController(sample_size=10, min_reject_rate=0.5)
        counters = CostCounters()
        for i in range(10):
            controller.observe(i % 2 == 0, counters)
        assert controller.decided and controller.active
        assert "bitmap_disabled" not in counters.extra


class TestPrunerAndCounters:
    def test_counters_and_no_false_rejects(self):
        data = Dataset(list(RECORDS))
        bound = OverlapPredicate(2).bind(data)
        pruner = BitmapPruner.for_join(
            bound, BitmapFilterConfig(width=128, adaptive=False)
        )
        counters = CostCounters()
        rejected = [
            (a, b)
            for a in range(len(RECORDS))
            for b in range(a + 1, len(RECORDS))
            if pruner.rejects(a, b, counters)
        ]
        n_pairs = len(RECORDS) * (len(RECORDS) - 1) // 2
        assert counters.bitmap_checks == n_pairs
        assert counters.bitmap_rejects == len(rejected)
        for a, b in rejected:
            assert len(set(RECORDS[a]) & set(RECORDS[b])) < 2

    def test_bitmap_checks_excluded_from_total_work(self):
        counters = CostCounters()
        base = counters.total_work()
        counters.bitmap_checks += 100
        counters.bitmap_rejects += 40
        assert counters.total_work() == base

    def test_for_join_returns_none_without_adapter(self):
        class _Opaque:
            use_signature_prefilter = False

            def similarity_name(self):
                return "mystery-metric"

        assert (
            BitmapPruner.for_join(_Opaque(), BitmapFilterConfig()) is None
        )

    def test_merge_preserves_bitmap_counters(self):
        a, b = CostCounters(), CostCounters()
        a.bitmap_checks, a.bitmap_rejects = 5, 2
        b.bitmap_checks, b.bitmap_rejects = 7, 3
        a.merge(b)
        assert (a.bitmap_checks, a.bitmap_rejects) == (12, 5)
