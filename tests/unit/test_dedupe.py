"""Unit tests for the deduplication convenience layer."""

from repro import JaccardPredicate, MatchPair, connected_components, dedupe_texts
from repro.text.tokenizers import tokenize_words


class TestConnectedComponents:
    def test_empty(self):
        assert connected_components([], 5) == []

    def test_single_pair(self):
        assert connected_components([(0, 3)], 4) == [[0, 3]]

    def test_chain_merges(self):
        groups = connected_components([(0, 1), (1, 2), (3, 4)], 6)
        assert groups == [[0, 1, 2], [3, 4]]

    def test_match_pair_objects_accepted(self):
        pairs = [MatchPair(2, 5, 0.9), MatchPair(5, 7, 0.8)]
        assert connected_components(pairs, 8) == [[2, 5, 7]]

    def test_singletons_omitted(self):
        groups = connected_components([(0, 1)], 10)
        assert groups == [[0, 1]]

    def test_order_by_smallest_member(self):
        groups = connected_components([(8, 9), (0, 1)], 10)
        assert groups == [[0, 1], [8, 9]]

    def test_duplicate_pairs_idempotent(self):
        groups = connected_components([(0, 1), (0, 1), (1, 0)], 3)
        assert groups == [[0, 1]]


class TestDedupeTexts:
    TEXTS = [
        "efficient set joins on similarity predicates",
        "set joins on similarity predicates efficient",
        "totally different content about gardening",
        "gardening content totally different about",
        "lone record with nothing similar",
    ]

    def test_groups_found(self):
        groups = dedupe_texts(self.TEXTS, JaccardPredicate(0.8), tokenize_words)
        assert groups == [[0, 1], [2, 3]]

    def test_algorithm_option(self):
        groups = dedupe_texts(
            self.TEXTS, JaccardPredicate(0.8), tokenize_words,
            algorithm="probe-count-optmerge",
        )
        assert groups == [[0, 1], [2, 3]]

    def test_no_duplicates(self):
        groups = dedupe_texts(
            ["aaa bbb", "ccc ddd", "eee fff"], JaccardPredicate(0.5), tokenize_words
        )
        assert groups == []

    def test_transitive_grouping(self):
        texts = [
            "a b c d e",
            "a b c d f",   # close to 0
            "a b c g f",   # close to 1, not to 0
        ]
        groups = dedupe_texts(texts, JaccardPredicate(0.6), tokenize_words)
        assert groups == [[0, 1, 2]]
