"""Unit tests for Probe-Cluster (§3.4)."""

import pytest

from repro import (
    Dataset,
    JaccardPredicate,
    NaiveJoin,
    OverlapPredicate,
    ProbeClusterJoin,
)
from tests.conftest import random_dataset


class TestProbeCluster:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ProbeClusterJoin(home_similarity=-0.1)
        with pytest.raises(ValueError):
            ProbeClusterJoin(home_similarity=1.1)

    def test_basic_result(self, small_dataset):
        result = ProbeClusterJoin().join(small_dataset, OverlapPredicate(5))
        assert result.pair_set() == {(0, 1)}

    @pytest.mark.parametrize("sort", [False, True])
    @pytest.mark.parametrize("home_similarity", [0.3, 0.5, 0.8])
    @pytest.mark.parametrize("seed", [1, 3, 7])
    def test_equivalence_with_naive(self, sort, home_similarity, seed):
        data = random_dataset(seed=seed)
        predicate = OverlapPredicate(4)
        truth = NaiveJoin().join(data, predicate).pair_set()
        algorithm = ProbeClusterJoin(sort=sort, home_similarity=home_similarity)
        assert algorithm.join(data, predicate).pair_set() == truth

    def test_jaccard_equivalence(self):
        data = random_dataset(seed=10)
        predicate = JaccardPredicate(0.6)
        truth = NaiveJoin().join(data, predicate).pair_set()
        assert ProbeClusterJoin().join(data, predicate).pair_set() == truth

    def test_assignment_covers_all_records(self):
        data = random_dataset(seed=2)
        algorithm = ProbeClusterJoin()
        algorithm.join(data, OverlapPredicate(4))
        assert set(algorithm.last_assignment) == set(range(len(data)))

    def test_clusters_are_disjoint(self):
        data = random_dataset(seed=2)
        algorithm = ProbeClusterJoin()
        algorithm.join(data, OverlapPredicate(4))
        # each record maps to exactly one cluster by construction;
        # cluster ids must be contiguous from 0
        cids = set(algorithm.last_assignment.values())
        assert cids == set(range(len(cids)))

    def test_duplicate_heavy_data_builds_few_clusters(self):
        # Identical records should pile into shared clusters.
        data = Dataset([(1, 2, 3, 4)] * 20)
        algorithm = ProbeClusterJoin(home_similarity=0.5)
        result = algorithm.join(data, OverlapPredicate(3))
        assert len(result.pairs) == 190
        assert result.counters.clusters_created < 20

    def test_cluster_cap_forces_assignment(self):
        data = random_dataset(seed=4)
        algorithm = ProbeClusterJoin(max_clusters=3)
        truth = NaiveJoin().join(data, OverlapPredicate(4)).pair_set()
        result = algorithm.join(data, OverlapPredicate(4))
        assert result.pair_set() == truth
        assert result.counters.clusters_created <= 3

    def test_cluster_size_cap_respected(self):
        data = Dataset([(1, 2, 3, 4)] * 30)
        algorithm = ProbeClusterJoin(max_cluster_records=5)
        result = algorithm.join(data, OverlapPredicate(3))
        assert len(result.pairs) == 30 * 29 // 2
        from collections import Counter

        sizes = Counter(algorithm.last_assignment.values())
        assert max(sizes.values()) <= 5

    def test_empty_dataset(self):
        result = ProbeClusterJoin().join(Dataset([]), OverlapPredicate(1))
        assert result.pairs == []

    def test_counts_cluster_probes(self):
        data = random_dataset(seed=5)
        result = ProbeClusterJoin().join(data, OverlapPredicate(3))
        assert result.counters.cluster_probes >= len(result.pairs) / max(len(data), 1)
