"""Unit tests for the parallel sharded join engine (parent side)."""

import pytest

from repro import OverlapPredicate, parallel_join, similarity_join
from repro.core.records import Dataset
from repro.parallel import PARALLEL_ALGORITHMS, shard_bounds
from repro.parallel.worker import shard_algorithm_name


def small_dataset(n=40):
    return Dataset(
        [
            tuple(sorted({(5 * i + j * j) % 19 for j in range(2 + i % 4)}))
            for i in range(n)
        ]
    )


class TestShardBounds:
    def test_partitions_the_range_contiguously(self):
        bounds = shard_bounds(10, 3)
        assert bounds == [(0, 4), (4, 7), (7, 10)]
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 10
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert hi == lo

    def test_sizes_differ_by_at_most_one(self):
        for n in (0, 1, 7, 100, 101):
            for workers in (1, 2, 3, 7, 16):
                sizes = [hi - lo for lo, hi in shard_bounds(n, workers)]
                assert len(sizes) == workers
                assert sum(sizes) == n
                assert max(sizes) - min(sizes) <= 1

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError, match="workers"):
            shard_bounds(10, 0)


class TestValidation:
    def test_rejects_unsupported_registered_algorithm(self):
        """pair-count exists serially but cannot shard; say so clearly."""
        with pytest.raises(ValueError, match="serially"):
            parallel_join(small_dataset(), OverlapPredicate(2), algorithm="pair-count")

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError, match="no-such-join"):
            parallel_join(
                small_dataset(), OverlapPredicate(2), algorithm="no-such-join"
            )

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError, match="workers"):
            parallel_join(small_dataset(), OverlapPredicate(2), workers=0)

    def test_rejects_nonpositive_batch_size(self):
        with pytest.raises(ValueError, match="batch_size"):
            parallel_join(
                small_dataset(), OverlapPredicate(2), workers=2, batch_size=0
            )

    def test_supported_algorithms_are_registered(self):
        from repro.core.join import _SPECS

        assert PARALLEL_ALGORITHMS <= set(_SPECS)


class TestShardNaming:
    def test_name_encodes_shard_and_count(self):
        assert shard_algorithm_name("probe-count", 2, 7) == "probe-count@shard2.7"


class TestParallelJoin:
    def test_empty_dataset_returns_empty_result(self):
        """An empty dataset clamps to one (never-started) worker."""
        result = parallel_join(Dataset([]), OverlapPredicate(2), workers=3)
        assert result.pairs == []
        assert result.algorithm == "parallel(probe-count-optmerge, workers=1)"
        assert result.counters.extra["parallel_workers"] == 1

    def test_matches_serial_and_orders_pairs(self):
        data = small_dataset()
        predicate = OverlapPredicate(2)
        serial = similarity_join(data, predicate, algorithm="probe-count-optmerge")
        result = parallel_join(
            data, predicate, algorithm="probe-count-optmerge", workers=2
        )
        assert result.pair_set() == serial.pair_set()
        keys = [(p.rid_a, p.rid_b) for p in result.pairs]
        assert keys == sorted(keys)
        similarity = {(p.rid_a, p.rid_b): p.similarity for p in serial.pairs}
        for pair in result.pairs:
            assert pair.similarity == similarity[(pair.rid_a, pair.rid_b)]

    def test_workers_clamped_to_record_count(self):
        data = small_dataset(3)
        result = parallel_join(data, OverlapPredicate(1), workers=16)
        assert result.counters.extra["parallel_workers"] == 3

    def test_tiny_batch_size_streams_correctly(self):
        data = small_dataset()
        predicate = OverlapPredicate(2)
        serial = similarity_join(data, predicate, algorithm="probe-count-optmerge")
        result = parallel_join(data, predicate, workers=2, batch_size=1)
        assert result.pair_set() == serial.pair_set()

    def test_probe_counters_match_serial(self):
        data = small_dataset()
        predicate = OverlapPredicate(2)
        serial = similarity_join(data, predicate, algorithm="probe-count-optmerge")
        result = parallel_join(data, predicate, workers=3)
        for name in ("heap_pops", "list_items_touched", "pairs_verified"):
            assert getattr(result.counters, name) == getattr(
                serial.counters, name
            ), name
        assert result.counters.pairs_output == len(result.pairs)
