"""Unit tests for the incremental SimilarityIndex service."""

import pytest

from repro import JaccardPredicate, OverlapPredicate
from repro.core.service import SimilarityIndex
from repro.text.tokenizers import tokenize_words


class TestAddAndQuery:
    def test_empty_index_query(self):
        service = SimilarityIndex(OverlapPredicate(2), tokenizer=tokenize_words)
        assert service.query("anything at all") == []

    def test_basic_match(self):
        service = SimilarityIndex(OverlapPredicate(3), tokenizer=tokenize_words)
        rid = service.add("efficient set joins on similarity predicates")
        service.add("completely different words here")
        matches = service.query("set joins similarity")
        assert [m.rid_a for m in matches] == [rid]

    def test_query_does_not_insert(self):
        service = SimilarityIndex(OverlapPredicate(1), tokenizer=tokenize_words)
        service.add("alpha beta")
        service.query("alpha beta")
        assert len(service) == 1
        # Same query again: still exactly one match.
        assert len(service.query("alpha beta")) == 1

    def test_incremental_adds_visible(self):
        service = SimilarityIndex(JaccardPredicate(0.6), tokenizer=tokenize_words)
        assert service.query("set joins predicates") == []
        service.add("set joins predicates")
        assert len(service.query("set joins predicates")) == 1

    def test_token_list_input(self):
        service = SimilarityIndex(OverlapPredicate(2))
        service.add(["a", "b", "c"])
        matches = service.query(["b", "c", "d"])
        assert len(matches) == 1
        assert matches[0].similarity == 2.0

    def test_jaccard_similarity_values(self):
        service = SimilarityIndex(JaccardPredicate(0.4), tokenizer=tokenize_words)
        service.add("one two three four")
        [match] = service.query("one two three nope")
        assert match.similarity == pytest.approx(3 / 5)

    def test_payload_roundtrip(self):
        service = SimilarityIndex(OverlapPredicate(1), tokenizer=tokenize_words)
        rid = service.add("alpha beta", payload={"id": 17})
        assert service.payload(rid) == {"id": 17}

    def test_matches_batch_join(self):
        """Service queries agree with the batch self-join."""
        from repro import Dataset, NaiveJoin

        texts = [
            "set joins on similarity predicates",
            "similarity predicates for set joins",
            "unrelated gardening article",
            "gardening article unrelated content",
        ]
        predicate = JaccardPredicate(0.6)
        data = Dataset.from_texts(texts, tokenize_words)
        truth = NaiveJoin().join(data, predicate).pair_set()

        service = SimilarityIndex(predicate, tokenizer=tokenize_words)
        online_pairs = set()
        for rid, text in enumerate(texts):
            for match in service.query(text):
                online_pairs.add((match.rid_a, rid))
            service.add(text)
        assert online_pairs == truth


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "index.json")
        service = SimilarityIndex(OverlapPredicate(2), tokenizer=tokenize_words)
        service.add("efficient set joins")
        service.add("unrelated gardening text")
        service.save(path)

        restored = SimilarityIndex.load(
            path, OverlapPredicate(2), tokenizer=tokenize_words
        )
        assert len(restored) == 2
        matches = restored.query("set joins today")
        assert [m.rid_a for m in matches] == [0]

    def test_loaded_index_accepts_new_records(self, tmp_path):
        path = str(tmp_path / "index.json")
        service = SimilarityIndex(OverlapPredicate(1), tokenizer=tokenize_words)
        service.add("alpha beta")
        service.save(path)
        restored = SimilarityIndex.load(path, OverlapPredicate(1), tokenizer=tokenize_words)
        restored.add("beta gamma")
        assert len(restored.query("beta")) == 2


class TestMergeBackend:
    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            SimilarityIndex(OverlapPredicate(1), merge_backend="quantum")

    @pytest.mark.parametrize("backend", ["auto", "heap", "accumulator"])
    def test_query_results_identical_across_backends(self, backend):
        corpus = [
            "efficient set joins on similarity predicates",
            "set joins on similarity predicates efficient",
            "completely unrelated gardening advice",
            "set similarity joins",
        ]
        reference = SimilarityIndex(
            JaccardPredicate(0.4), tokenizer=tokenize_words, merge_backend="heap"
        )
        service = SimilarityIndex(
            JaccardPredicate(0.4), tokenizer=tokenize_words, merge_backend=backend
        )
        for line in corpus:
            reference.add(line)
            service.add(line)
        for query in corpus + ["similarity joins on sets", "nothing in common"]:
            expected = [(m.rid_a, m.similarity) for m in reference.query(query)]
            got = [(m.rid_a, m.similarity) for m in service.query(query)]
            assert got == expected

    def test_save_load_roundtrips_backend(self, tmp_path):
        path = str(tmp_path / "index.snapshot")
        service = SimilarityIndex(
            OverlapPredicate(2), tokenizer=tokenize_words, merge_backend="accumulator"
        )
        service.add("alpha beta gamma")
        service.add("beta gamma delta")
        service.save(path)
        restored = SimilarityIndex.load(
            path, OverlapPredicate(2), tokenizer=tokenize_words,
            merge_backend="accumulator",
        )
        assert restored.merge_backend == "accumulator"
        got = [m.rid_a for m in restored.query("beta gamma epsilon")]
        assert got == [0, 1]
