"""Unit tests for the cluster bookkeeping shared by §3.4 and §4."""

import pytest

from repro.core.clusters import Cluster, ClusterSet


class TestCluster:
    def test_add_record_tracks_membership(self):
        cluster = Cluster(0)
        cluster.add_record(0, 10, (1, 2), (1.0, 1.0), norm=2.0)
        cluster.add_record(3, 11, (2, 3), (1.0, 1.0), norm=2.0)
        assert cluster.positions == [0, 3]
        assert cluster.rids == [10, 11]
        assert len(cluster) == 2

    def test_min_member_norm(self):
        cluster = Cluster(0)
        cluster.add_record(0, 1, (1,), (1.0,), norm=5.0)
        cluster.add_record(1, 2, (2,), (1.0,), norm=3.0)
        cluster.add_record(2, 3, (3,), (1.0,), norm=9.0)
        assert cluster.min_member_norm == 3.0

    def test_union_norm_counts_distinct_words(self):
        cluster = Cluster(0)
        cluster.add_record(0, 1, (1, 2), (1.0, 1.0), norm=2.0)
        cluster.add_record(1, 2, (2, 3), (1.0, 1.0), norm=2.0)
        assert cluster.union_norm == 3.0  # union {1, 2, 3}, unit scores

    def test_word_scores_take_max(self):
        cluster = Cluster(0)
        cluster.add_record(0, 1, (7,), (1.0,), norm=1.0)
        updates = cluster.add_record(1, 2, (7,), (3.0,), norm=9.0)
        assert cluster.word_scores[7] == 3.0
        assert updates == [(7, 3.0)]
        # union norm replaced 1^2 by 3^2
        assert cluster.union_norm == pytest.approx(9.0)

    def test_add_record_reports_only_changes(self):
        cluster = Cluster(0)
        cluster.add_record(0, 1, (1, 2), (1.0, 1.0), norm=2.0)
        updates = cluster.add_record(1, 2, (2, 3), (1.0, 1.0), norm=2.0)
        assert updates == [(3, 1.0)]  # word 2 unchanged (same score)

    def test_index_starts_unmaterialized(self):
        assert Cluster(0).index is None


class TestClusterSet:
    def test_new_cluster_ids_sequential(self):
        clusters = ClusterSet()
        assert clusters.new_cluster().cid == 0
        assert clusters.new_cluster().cid == 1
        assert len(clusters) == 2

    def test_assign_updates_cluster_level_index(self):
        clusters = ClusterSet()
        cluster = clusters.new_cluster()
        clusters.assign(cluster, 0, 0, (1, 2), (1.0, 1.0), norm=2.0)
        assert list(clusters.index.get(1).ids) == [0]
        assert clusters.index.n_entries == 2

    def test_assign_out_of_cid_order_keeps_lists_sorted(self):
        clusters = ClusterSet()
        first = clusters.new_cluster()
        second = clusters.new_cluster()
        clusters.assign(second, 0, 0, (5,), (1.0,), norm=1.0)
        # An older cluster later gains the same word.
        clusters.assign(first, 1, 1, (5,), (1.0,), norm=1.0)
        assert list(clusters.index.get(5).ids) == [0, 1]

    def test_assign_tracks_min_norm(self):
        clusters = ClusterSet()
        cluster = clusters.new_cluster()
        clusters.assign(cluster, 0, 0, (1,), (1.0,), norm=4.0)
        clusters.assign(cluster, 1, 1, (2,), (1.0,), norm=2.0)
        assert clusters.index.min_norm == 2.0
        assert clusters.cluster_norm(0) == 2.0

    def test_assign_score_raise_does_not_duplicate_entry(self):
        clusters = ClusterSet()
        cluster = clusters.new_cluster()
        clusters.assign(cluster, 0, 0, (9,), (1.0,), norm=1.0)
        clusters.assign(cluster, 1, 1, (9,), (2.0,), norm=4.0)
        plist = clusters.index.get(9)
        assert list(plist.ids) == [0]
        assert list(plist.scores) == [2.0]
        assert clusters.index.n_entries == 1


class TestNEntriesBookkeeping:
    def test_assign_keeps_n_entries_consistent(self):
        """Regression: score-raising re-assignments must not inflate
        n_entries (insert_sorted reports reuse; assign counts only new
        slots). The audit recomputes from the lists themselves."""
        clusters = ClusterSet()
        cluster = clusters.new_cluster()
        clusters.assign(cluster, 0, 0, (1, 2), (1.0, 1.0), norm=2.0)
        clusters.assign(cluster, 1, 1, (2, 3), (2.0, 1.0), norm=3.0)
        clusters.assign(cluster, 2, 2, (2,), (3.0,), norm=3.0)
        assert clusters.index.audit_n_entries() == clusters.index.n_entries
