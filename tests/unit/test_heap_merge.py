"""Unit tests for the basic heap merge (§2.1)."""

from repro.core.heap_merge import heap_merge
from repro.core.inverted_index import PostingList
from repro.utils.counters import CostCounters


def make_list(entries):
    plist = PostingList()
    for entity_id, score in entries:
        plist.append(entity_id, score)
    return plist


class TestHeapMerge:
    def test_accumulates_across_lists(self):
        lists = [
            (make_list([(0, 1.0), (2, 1.0)]), 1.0),
            (make_list([(0, 1.0), (1, 1.0)]), 1.0),
            (make_list([(0, 1.0)]), 1.0),
        ]
        counters = CostCounters()
        out = heap_merge(lists, lambda _s: 2.0, counters)
        assert out == [(0, 3.0)]

    def test_threshold_of_is_per_entity(self):
        lists = [
            (make_list([(0, 1.0), (1, 1.0)]), 1.0),
            (make_list([(0, 1.0), (1, 1.0)]), 1.0),
        ]
        # Entity 0 needs 3 (fails), entity 1 needs 2 (passes).
        out = heap_merge(lists, lambda s: 3.0 if s == 0 else 2.0, CostCounters())
        assert out == [(1, 2.0)]

    def test_scores_multiply(self):
        lists = [(make_list([(0, 2.0)]), 3.0)]
        out = heap_merge(lists, lambda _s: 6.0, CostCounters())
        assert out == [(0, 6.0)]

    def test_accept_filter_skips_entities(self):
        lists = [
            (make_list([(0, 1.0), (1, 1.0), (2, 1.0)]), 1.0),
            (make_list([(0, 1.0), (1, 1.0), (2, 1.0)]), 1.0),
        ]
        out = heap_merge(lists, lambda _s: 2.0, CostCounters(), accept=lambda s: s != 1)
        assert out == [(0, 2.0), (2, 2.0)]

    def test_results_in_increasing_id_order(self):
        lists = [
            (make_list([(3, 1.0), (7, 1.0)]), 1.0),
            (make_list([(1, 1.0), (3, 1.0), (7, 1.0)]), 1.0),
            (make_list([(3, 1.0), (7, 1.0)]), 1.0),
        ]
        out = heap_merge(lists, lambda _s: 2.0, CostCounters())
        assert [entity for entity, _w in out] == [3, 7]

    def test_empty_lists(self):
        assert heap_merge([], lambda _s: 1.0, CostCounters()) == []

    def test_counters_track_pops(self):
        lists = [
            (make_list([(0, 1.0), (1, 1.0)]), 1.0),
            (make_list([(0, 1.0)]), 1.0),
        ]
        counters = CostCounters()
        heap_merge(lists, lambda _s: 1.0, counters)
        assert counters.heap_pops == 3
        assert counters.heap_pushes == 3
        assert counters.candidates_checked == 2

    def test_single_list_every_entry_is_candidate(self):
        lists = [(make_list([(0, 1.0), (5, 1.0), (9, 1.0)]), 1.0)]
        out = heap_merge(lists, lambda _s: 1.0, CostCounters())
        assert out == [(0, 1.0), (5, 1.0), (9, 1.0)]


def _reference_heap_merge(lists, threshold_of, counters, accept=None):
    """The straightforward (unrolled first-pop / follow-up-pop) form of
    the merge, kept verbatim as the counter-identity oracle for the
    shared-inner-step formulation in ``heap_merge``."""
    import heapq

    from repro.predicates.base import WEIGHT_EPS

    n_lists = len(lists)
    frontiers = [0] * n_lists
    heap = []
    for list_idx, (plist, _probe_score) in enumerate(lists):
        ids = plist.ids
        position = 0
        if accept is not None:
            while position < len(ids) and not accept(ids[position]):
                position += 1
        if position < len(ids):
            heap.append((ids[position], list_idx))
            frontiers[list_idx] = position + 1
            counters.heap_pushes += 1
        else:
            frontiers[list_idx] = position
    heapq.heapify(heap)

    def advance(list_idx):
        plist, probe_score = lists[list_idx]
        position = frontiers[list_idx]
        contribution = probe_score * plist.scores[position - 1]
        counters.list_items_touched += 1
        ids = plist.ids
        if accept is not None:
            while position < len(ids) and not accept(ids[position]):
                position += 1
        if position < len(ids):
            heapq.heappush(heap, (ids[position], list_idx))
            counters.heap_pushes += 1
            frontiers[list_idx] = position + 1
        else:
            frontiers[list_idx] = position
        return contribution

    candidates = []
    while heap:
        current, list_idx = heapq.heappop(heap)
        counters.heap_pops += 1
        weight = advance(list_idx)
        while heap and heap[0][0] == current:
            _, list_idx = heapq.heappop(heap)
            counters.heap_pops += 1
            weight += advance(list_idx)
        counters.candidates_checked += 1
        if weight >= threshold_of(current) - WEIGHT_EPS:
            candidates.append((current, weight))
    return candidates


class TestCounterIdentity:
    """The deduplicated inner loop must be counter- and result-identical
    to the unrolled formulation it replaced."""

    def _random_lists(self, rng):
        lists = []
        for _ in range(rng.randint(1, 8)):
            ids = sorted(rng.sample(range(40), rng.randint(1, 15)))
            entries = [(entity, rng.uniform(0.2, 2.0)) for entity in ids]
            lists.append((make_list(entries), rng.uniform(0.2, 2.0)))
        return lists

    def test_counters_and_results_identical_to_reference(self):
        import random

        rng = random.Random(20260806)
        for trial in range(50):
            lists = self._random_lists(rng)
            threshold = rng.uniform(0.5, 4.0)
            accept = (lambda e: e % 3 != 0) if trial % 2 else None
            got_counters = CostCounters()
            ref_counters = CostCounters()
            got = heap_merge(lists, lambda _s: threshold, got_counters, accept)
            ref = _reference_heap_merge(
                lists, lambda _s: threshold, ref_counters, accept
            )
            assert got == ref
            assert got_counters.as_dict() == ref_counters.as_dict()
