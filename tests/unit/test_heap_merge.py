"""Unit tests for the basic heap merge (§2.1)."""

from repro.core.heap_merge import heap_merge
from repro.core.inverted_index import PostingList
from repro.utils.counters import CostCounters


def make_list(entries):
    plist = PostingList()
    for entity_id, score in entries:
        plist.append(entity_id, score)
    return plist


class TestHeapMerge:
    def test_accumulates_across_lists(self):
        lists = [
            (make_list([(0, 1.0), (2, 1.0)]), 1.0),
            (make_list([(0, 1.0), (1, 1.0)]), 1.0),
            (make_list([(0, 1.0)]), 1.0),
        ]
        counters = CostCounters()
        out = heap_merge(lists, lambda _s: 2.0, counters)
        assert out == [(0, 3.0)]

    def test_threshold_of_is_per_entity(self):
        lists = [
            (make_list([(0, 1.0), (1, 1.0)]), 1.0),
            (make_list([(0, 1.0), (1, 1.0)]), 1.0),
        ]
        # Entity 0 needs 3 (fails), entity 1 needs 2 (passes).
        out = heap_merge(lists, lambda s: 3.0 if s == 0 else 2.0, CostCounters())
        assert out == [(1, 2.0)]

    def test_scores_multiply(self):
        lists = [(make_list([(0, 2.0)]), 3.0)]
        out = heap_merge(lists, lambda _s: 6.0, CostCounters())
        assert out == [(0, 6.0)]

    def test_accept_filter_skips_entities(self):
        lists = [
            (make_list([(0, 1.0), (1, 1.0), (2, 1.0)]), 1.0),
            (make_list([(0, 1.0), (1, 1.0), (2, 1.0)]), 1.0),
        ]
        out = heap_merge(lists, lambda _s: 2.0, CostCounters(), accept=lambda s: s != 1)
        assert out == [(0, 2.0), (2, 2.0)]

    def test_results_in_increasing_id_order(self):
        lists = [
            (make_list([(3, 1.0), (7, 1.0)]), 1.0),
            (make_list([(1, 1.0), (3, 1.0), (7, 1.0)]), 1.0),
            (make_list([(3, 1.0), (7, 1.0)]), 1.0),
        ]
        out = heap_merge(lists, lambda _s: 2.0, CostCounters())
        assert [entity for entity, _w in out] == [3, 7]

    def test_empty_lists(self):
        assert heap_merge([], lambda _s: 1.0, CostCounters()) == []

    def test_counters_track_pops(self):
        lists = [
            (make_list([(0, 1.0), (1, 1.0)]), 1.0),
            (make_list([(0, 1.0)]), 1.0),
        ]
        counters = CostCounters()
        heap_merge(lists, lambda _s: 1.0, counters)
        assert counters.heap_pops == 3
        assert counters.heap_pushes == 3
        assert counters.candidates_checked == 2

    def test_single_list_every_entry_is_candidate(self):
        lists = [(make_list([(0, 1.0), (5, 1.0), (9, 1.0)]), 1.0)]
        out = heap_merge(lists, lambda _s: 1.0, CostCounters())
        assert out == [(0, 1.0), (5, 1.0), (9, 1.0)]
