"""Unit tests for the Hamming / symmetric-difference predicate."""

import pytest

from repro import Dataset, NaiveJoin, similarity_join
from repro.predicates.hamming import HammingPredicate
from tests.conftest import random_dataset


@pytest.fixture
def data():
    return Dataset([(0, 1, 2, 3), (0, 1, 2, 4), (0, 1), (7, 8, 9)])


class TestHammingPredicate:
    def test_k_validation(self):
        with pytest.raises(ValueError):
            HammingPredicate(-1)

    def test_threshold_formula(self, data):
        bound = HammingPredicate(2).bind(data)
        assert bound.threshold(4.0, 4.0) == pytest.approx(3.0)

    def test_threshold_tightness(self, data):
        k = 3
        bound = HammingPredicate(k).bind(data)
        for size_r in range(1, 8):
            for size_s in range(1, 8):
                for overlap in range(0, min(size_r, size_s) + 1):
                    hamming = size_r + size_s - 2 * overlap
                    passes = overlap >= bound.threshold(size_r, size_s) - 1e-9
                    assert passes == (hamming <= k)

    def test_verify_reports_distance(self, data):
        bound = HammingPredicate(2).bind(data)
        ok, distance = bound.verify(0, 1)  # differ in one element each way
        assert ok and distance == 2.0
        ok, distance = bound.verify(0, 2)  # sizes 4 vs 2, overlap 2
        assert ok and distance == 2.0

    def test_band_filter(self, data):
        band = HammingPredicate(1).bind(data).band_filter()
        assert not band.accepts(0, 2)  # sizes 4 vs 2, gap 2 > k=1
        assert band.accepts(0, 1)

    def test_filter_soundness(self):
        data = random_dataset(seed=70)
        bound = HammingPredicate(3).bind(data)
        band = bound.band_filter()
        for a in range(len(data)):
            for b in range(a + 1, len(data)):
                sym_diff = len(set(data[a]) ^ set(data[b]))
                if sym_diff <= 3:
                    assert band.accepts(a, b)

    @pytest.mark.parametrize("k", [0, 2, 5, 9])
    @pytest.mark.parametrize(
        "algorithm", ["probe-count-optmerge", "probe-count-sort", "probe-cluster"]
    )
    def test_hamming_join_equivalence_with_naive(self, k, algorithm):
        from repro.core.join import hamming_join

        data = random_dataset(seed=71)
        predicate = HammingPredicate(k)
        truth = NaiveJoin().join(data, predicate).pair_set()
        got = hamming_join(data, k, algorithm=algorithm).pair_set()
        assert got == truth

    @pytest.mark.parametrize("k", [0, 1])
    def test_bare_predicate_exact_for_small_k(self, k):
        # Every record has > k elements -> no vacuous-threshold pairs.
        data = random_dataset(seed=72, min_size=3)
        predicate = HammingPredicate(k)
        truth = NaiveJoin().join(data, predicate).pair_set()
        got = similarity_join(data, predicate, algorithm="probe-count-optmerge").pair_set()
        assert got == truth

    def test_k_zero_means_equality(self):
        data = Dataset([(1, 2), (1, 2), (1, 3)])
        result = similarity_join(data, HammingPredicate(0), algorithm="probe-count-optmerge")
        assert result.pair_set() == {(0, 1)}
