"""Unit tests for the top-k similar-pairs join (extension)."""

import pytest

from repro import (
    CosinePredicate,
    Dataset,
    JaccardPredicate,
    NaiveJoin,
    OverlapPredicate,
    TopKJoin,
)
from tests.conftest import random_dataset


def brute_force_topk(data, predicate_factory, floor, k):
    """All pairs above the floor, best first."""
    result = NaiveJoin().join(data, predicate_factory(floor))
    ranked = sorted(
        ((p.similarity, p.rid_a, p.rid_b) for p in result.pairs), reverse=True
    )
    return ranked[:k]


class TestTopKJoin:
    def test_k_validation(self):
        with pytest.raises(ValueError):
            TopKJoin(0, JaccardPredicate, floor=0.1)

    def test_lower_is_better_unsupported(self):
        with pytest.raises(NotImplementedError):
            TopKJoin(3, JaccardPredicate, floor=0.1, higher_is_better=False)

    def test_small_fixture(self):
        data = Dataset([(0, 1, 2, 3), (0, 1, 2, 3), (0, 1, 2, 9), (7, 8)])
        result = TopKJoin(2, JaccardPredicate, floor=0.1).join(data)
        assert len(result.pairs) == 2
        best = result.pairs[0]
        assert (best.rid_a, best.rid_b) == (0, 1)
        assert best.similarity == pytest.approx(1.0)

    @pytest.mark.parametrize("k", [1, 3, 10, 50])
    def test_matches_brute_force_jaccard(self, k):
        data = random_dataset(seed=41)
        expected = brute_force_topk(data, JaccardPredicate, 0.2, k)
        result = TopKJoin(k, JaccardPredicate, floor=0.2).join(data)
        got = [(p.similarity, p.rid_a, p.rid_b) for p in result.pairs]
        assert got == expected

    def test_matches_brute_force_cosine(self):
        data = random_dataset(seed=42)
        expected = brute_force_topk(data, CosinePredicate, 0.3, 5)
        result = TopKJoin(5, CosinePredicate, floor=0.3).join(data)
        got = [(p.similarity, p.rid_a, p.rid_b) for p in result.pairs]
        # similarity values may differ in float dust; compare pairwise
        assert [(a, b) for _s, a, b in got] == [(a, b) for _s, a, b in expected]

    def test_overlap_measure(self):
        data = random_dataset(seed=43)

        result = TopKJoin(4, OverlapPredicate, floor=1.0).join(data)
        expected = brute_force_topk(data, OverlapPredicate, 1.0, 4)
        got = [(p.similarity, p.rid_a, p.rid_b) for p in result.pairs]
        assert got == expected

    def test_fewer_pairs_than_k(self):
        data = Dataset([(0, 1), (0, 1), (5, 6)])
        result = TopKJoin(10, JaccardPredicate, floor=0.5).join(data)
        assert len(result.pairs) == 1

    def test_results_sorted_best_first(self):
        data = random_dataset(seed=44)
        result = TopKJoin(8, JaccardPredicate, floor=0.2).join(data)
        sims = [p.similarity for p in result.pairs]
        assert sims == sorted(sims, reverse=True)

    def test_ratcheting_saves_work(self):
        data = random_dataset(seed=45, n_base=120)
        lazy = TopKJoin(3, JaccardPredicate, floor=0.05).join(data)
        # Compare with a static full join at the floor threshold.
        from repro import similarity_join

        static = similarity_join(data, JaccardPredicate(0.05), algorithm="probe-count-sort")
        assert lazy.counters.pairs_verified <= static.counters.pairs_verified
