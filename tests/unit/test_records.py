"""Unit tests for the Dataset container."""

import pytest

from repro import Dataset
from repro.text.tokenizers import tokenize_words


class TestConstruction:
    def test_from_token_lists_assigns_ids_in_first_appearance_order(self):
        data = Dataset.from_token_lists([["b", "a"], ["a", "c"]])
        assert data.vocabulary == {"b": 0, "a": 1, "c": 2}
        assert data.records == [(0, 1), (1, 2)]

    def test_from_token_lists_dedupes_within_record(self):
        data = Dataset.from_token_lists([["x", "x", "y"]])
        assert data.records == [(0, 1)]

    def test_records_are_sorted_tuples(self):
        data = Dataset.from_token_lists([["z", "a", "m"]])
        assert data.records[0] == tuple(sorted(data.records[0]))

    def test_shared_vocabulary(self):
        vocab: dict = {}
        left = Dataset.from_token_lists([["a", "b"]], vocabulary=vocab)
        right = Dataset.from_token_lists([["b", "c"]], vocabulary=vocab)
        assert left.vocabulary is right.vocabulary
        assert right.records == [(1, 2)]

    def test_from_texts_keeps_payloads(self):
        data = Dataset.from_texts(["a b", "b c"], tokenize_words)
        assert data.payload(0) == "a b"
        assert data.payload(1) == "b c"

    def test_payload_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Dataset([(0,)], payloads=["a", "b"])


class TestStats:
    @pytest.fixture
    def data(self):
        return Dataset([(0, 1, 2), (0, 1), (3,)])

    def test_total_word_occurrences(self, data):
        assert data.total_word_occurrences() == 6

    def test_average_set_size(self, data):
        assert data.average_set_size() == pytest.approx(2.0)

    def test_average_set_size_empty(self):
        assert Dataset([]).average_set_size() == 0.0

    def test_n_distinct_tokens(self, data):
        assert data.n_distinct_tokens() == 4

    def test_frequency(self, data):
        assert data.frequency == {0: 2, 1: 2, 2: 1, 3: 1}


class TestTransforms:
    def test_head(self):
        data = Dataset([(0,), (1,), (2,)], payloads=["a", "b", "c"])
        head = data.head(2)
        assert len(head) == 2
        assert head.payloads == ["a", "b"]

    def test_reorder(self):
        data = Dataset([(0,), (1,), (2,)], payloads=["a", "b", "c"])
        reordered = data.reorder([2, 0, 1])
        assert reordered.records == [(2,), (0,), (1,)]
        assert reordered.payloads == ["c", "a", "b"]

    def test_reorder_rejects_bad_permutation(self):
        data = Dataset([(0,), (1,)])
        with pytest.raises(ValueError):
            data.reorder([0, 0])

    def test_sort_permutation_by_size_desc(self):
        data = Dataset([(0,), (1, 2, 3), (4, 5)])
        assert data.sort_permutation_by_size_desc() == [1, 2, 0]

    def test_sort_permutation_tie_broken_by_rid(self):
        data = Dataset([(1, 2), (3, 4)])
        assert data.sort_permutation_by_size_desc() == [0, 1]

    def test_token_string_roundtrip(self):
        data = Dataset.from_token_lists([["alpha", "beta"]])
        assert data.token_string(0) == "alpha"
        assert data.token_string(1) == "beta"

    def test_token_string_without_vocab(self):
        with pytest.raises(ValueError):
            Dataset([(0,)]).token_string(0)
