"""Unit tests for the similarity_join dispatch API and results."""

import pytest

from repro import (
    ALGORITHMS,
    Dataset,
    JoinResult,
    MatchPair,
    OverlapPredicate,
    make_algorithm,
    similarity_join,
)


class TestMatchPair:
    def test_make_orients_canonically(self):
        pair = MatchPair.make(5, 2, 0.7)
        assert (pair.rid_a, pair.rid_b) == (2, 5)

    def test_ordering(self):
        assert MatchPair(0, 1) < MatchPair(0, 2) < MatchPair(1, 2)


class TestJoinResult:
    def test_pair_set_and_len(self):
        result = JoinResult(
            pairs=[MatchPair(0, 1, 1.0), MatchPair(2, 3, 1.0)],
            algorithm="x",
            predicate="y",
        )
        assert len(result) == 2
        assert result.pair_set() == {(0, 1), (2, 3)}

    def test_sorted_pairs(self):
        result = JoinResult(
            pairs=[MatchPair(2, 3), MatchPair(0, 5), MatchPair(0, 1)],
            algorithm="x",
            predicate="y",
        )
        assert [(p.rid_a, p.rid_b) for p in result.sorted_pairs()] == [
            (0, 1),
            (0, 5),
            (2, 3),
        ]

    def test_repr_mentions_algorithm(self):
        result = JoinResult(pairs=[], algorithm="probe-cluster", predicate="overlap(T=2)")
        assert "probe-cluster" in repr(result)


class TestDispatch:
    @pytest.fixture
    def data(self):
        return Dataset([(0, 1, 2), (0, 1, 2), (5, 6, 7)])

    def test_every_registered_algorithm_runs(self, data):
        for name in ALGORITHMS:
            result = similarity_join(data, OverlapPredicate(3), algorithm=name)
            assert result.pair_set() == {(0, 1)}, name

    def test_unknown_algorithm(self, data):
        with pytest.raises(ValueError):
            similarity_join(data, OverlapPredicate(1), algorithm="quantum")

    def test_cluster_mem_needs_budget(self, data):
        with pytest.raises(ValueError):
            make_algorithm("cluster-mem")

    def test_cluster_mem_with_fraction(self, data):
        result = similarity_join(
            data, OverlapPredicate(3), algorithm="cluster-mem", memory_fraction=0.5
        )
        assert result.pair_set() == {(0, 1)}

    def test_cluster_mem_with_budget(self, data):
        from repro import MemoryBudget

        result = similarity_join(
            data, OverlapPredicate(3), algorithm="cluster-mem", budget=MemoryBudget(5)
        )
        assert result.pair_set() == {(0, 1)}

    def test_kwargs_forwarded(self, data):
        algorithm = make_algorithm("probe-count-optmerge", variant="online")
        assert algorithm.variant == "online"

    def test_result_metadata(self, data):
        result = similarity_join(data, OverlapPredicate(3), algorithm="probe-cluster")
        assert result.algorithm == "probe-cluster"
        assert result.predicate == "overlap(T=3)"
        assert result.elapsed_seconds >= 0.0
        assert result.counters.pairs_output == len(result.pairs)
