"""GenerationBuilder: zero-downtime reindex flips, exactly once, exactly right."""

import threading

import pytest

from repro import OverlapPredicate
from repro.runtime.errors import ConcurrentMutation, ReindexTimeout
from repro.serving import GenerationBuilder, ShardedIndexServer
from repro.text.tokenizers import tokenize_words

WAIT = 10.0

TEXTS = [
    "efficient set joins on similarity predicates",
    "set joins with similarity predicates made efficient",
    "completely different words entirely",
    "probe count optimized merge joins",
    "efficient merge joins on sorted postings",
    "similarity predicates over set valued attributes",
]

PROBE = "efficient set joins similarity"


def _server(**kwargs) -> ShardedIndexServer:
    server = ShardedIndexServer(
        OverlapPredicate(2),
        shards=3,
        tokenizer=tokenize_words,
        workers=2,
        **kwargs,
    )
    for text in TEXTS:
        server.add(text)
    return server.start()


def _fingerprint(matches) -> list:
    return [(m.rid_a, m.rid_b, round(m.similarity, 12)) for m in matches]


class _GatedFactory:
    """An index factory that parks until released — freezes phase 1."""

    def __init__(self, build):
        self.build = build
        self.entered = threading.Event()
        self.release = threading.Event()

    def __call__(self):
        self.entered.set()
        assert self.release.wait(WAIT)
        return self.build()


class TestFlip:
    def test_reindex_preserves_results_and_bumps_epochs(self):
        server = _server()
        try:
            before = _fingerprint(server.query(PROBE, timeout=WAIT))
            builders = server.reindex(block=True, timeout=WAIT)
            assert [b.flipped for b in builders] == [True] * 3
            assert [b.error for b in builders] == [None] * 3
            after = _fingerprint(server.query(PROBE, timeout=WAIT))
            assert after == before
            health = server.health()
            assert [row["epoch"] for row in health["shards"]] == [1, 1, 1]
        finally:
            server.drain(timeout=WAIT)

    def test_reindex_single_shard_only(self):
        server = _server()
        try:
            before = _fingerprint(server.query(PROBE, timeout=WAIT))
            server.reindex(shard_ids=[1], block=True, timeout=WAIT)
            assert _fingerprint(server.query(PROBE, timeout=WAIT)) == before
            epochs = [row["epoch"] for row in server.health()["shards"]]
            assert epochs == [0, 1, 0]
        finally:
            server.drain(timeout=WAIT)

    def test_flip_invalidates_only_the_flipped_shards_cache(self):
        server = _server(query_cache=8)
        try:
            server.query(PROBE, timeout=WAIT)  # miss + store on every shard
            server.query(PROBE, timeout=WAIT)  # hit on every shard
            server.reindex(shard_ids=[1], block=True, timeout=WAIT)
            server.query(PROBE, timeout=WAIT)  # shard 1 must re-probe
            for row in server.health()["shards"]:
                stats = row["cache"]
                if row["shard"] == 1:
                    assert (stats["hits"], stats["misses"]) == (1, 2)
                    assert stats["invalidations"] == 1
                else:
                    assert (stats["hits"], stats["misses"]) == (2, 1)
                    assert stats["invalidations"] == 0
        finally:
            server.drain(timeout=WAIT)


class TestZeroDowntime:
    def test_queries_are_served_while_the_build_runs(self):
        server = _server()
        try:
            gated = _GatedFactory(server._make_index)
            builder = GenerationBuilder(server._shards[0], gated).start()
            assert gated.entered.wait(WAIT)
            # The build is parked inside phase 1; queries must not block
            # on it (the build holds no shard lock there).
            result = server.query(PROBE, timeout=WAIT)
            assert not result.partial
            assert builder.wait(timeout=0.0) is False  # genuinely still building
            gated.release.set()
            assert builder.wait(timeout=WAIT) is True
            assert builder.flipped
        finally:
            gated.release.set()
            server.drain(timeout=WAIT)

    def test_adds_landing_mid_build_survive_via_catch_up(self):
        server = _server()
        try:
            shard = server._shards[0]
            snapshot_size = len(shard.global_rids)
            gated = _GatedFactory(server._make_index)
            builder = GenerationBuilder(shard, gated).start()
            assert gated.entered.wait(WAIT)
            # Land records on every shard while the build is parked —
            # whichever route to shard 0 lands after its snapshot.
            late = [
                server.add(f"efficient set joins straggler {i}") for i in range(6)
            ]
            gated.release.set()
            assert builder.wait(timeout=WAIT) is True
            late_on_flipped = [
                rid for rid in late if server.router.shard_of(rid) == 0
            ]
            assert builder.built == snapshot_size
            assert builder.caught_up == len(late_on_flipped)
            # Nothing lost: every straggler is matched post-flip.
            result = server.query(PROBE, timeout=WAIT)
            found = {m.rid_a for m in result}
            assert set(late) <= found
        finally:
            gated.release.set()
            server.drain(timeout=WAIT)

    def test_concurrent_queries_never_see_a_torn_index(self):
        server = _server()
        try:
            expected = _fingerprint(server.query(PROBE, timeout=WAIT))
            stop = threading.Event()
            errors: list[Exception] = []

            def hammer():
                try:
                    while not stop.is_set():
                        result = server.query(PROBE, timeout=WAIT)
                        assert _fingerprint(result) == expected
                        assert not result.partial
                except Exception as exc:  # noqa: BLE001 — fail the test
                    errors.append(exc)

            threads = [
                threading.Thread(target=hammer, daemon=True) for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            for _ in range(3):  # three full flip waves under fire
                server.reindex(block=True, timeout=WAIT)
            stop.set()
            for thread in threads:
                thread.join(WAIT)
                assert not thread.is_alive(), "query thread deadlocked"
            assert errors == []
        finally:
            server.drain(timeout=WAIT)


class TestFailure:
    def test_failed_build_changes_nothing_and_reraises(self):
        server = _server()
        try:
            before = _fingerprint(server.query(PROBE, timeout=WAIT))

            def exploding_factory():
                raise RuntimeError("no memory for a second generation")

            builder = GenerationBuilder(server._shards[1], exploding_factory)
            builder.start()
            with pytest.raises(RuntimeError, match="no memory"):
                builder.wait(timeout=WAIT)
            assert builder.flipped is False
            # The shard keeps serving its current generation, unchanged.
            assert _fingerprint(server.query(PROBE, timeout=WAIT)) == before
            assert server.health()["shards"][1]["epoch"] == 0
            # And the reindex latch was released: a retry can run.
            server.reindex(shard_ids=[1], block=True, timeout=WAIT)
            assert server.health()["shards"][1]["epoch"] == 1
        finally:
            server.drain(timeout=WAIT)

    def test_concurrent_reindex_of_one_shard_is_rejected(self):
        server = _server()
        try:
            gated = _GatedFactory(server._make_index)
            first = GenerationBuilder(server._shards[2], gated).start()
            assert gated.entered.wait(WAIT)
            second = GenerationBuilder(server._shards[2], server._make_index)
            with pytest.raises(ConcurrentMutation):
                second.build_and_flip()
            gated.release.set()
            assert first.wait(timeout=WAIT) is True
        finally:
            gated.release.set()
            server.drain(timeout=WAIT)

    def test_blocking_reindex_timeout_raises_instead_of_lying(self):
        """A build still running at the timeout must not be silently
        indistinguishable from one that flipped: reindex(block=True)
        raises ReindexTimeout carrying the stalled builders, and the
        builds themselves keep running to a normal flip."""
        server = _server()
        gated = _GatedFactory(server._make_index)
        server._make_index = gated  # park every build in phase 1
        try:
            with pytest.raises(ReindexTimeout) as info:
                server.reindex(shard_ids=[0], block=True, timeout=0.05)
            error = info.value
            assert len(error.builders) == 1
            assert error.stalled == error.builders
            assert error.stalled[0].flipped is False
            assert "1/1" in str(error)
            # The timeout abandoned the wait, not the build: release it
            # and the flip still lands.
            gated.release.set()
            assert error.stalled[0].wait(timeout=WAIT) is True
            assert error.stalled[0].flipped
            assert server.health()["shards"][0]["epoch"] == 1
        finally:
            gated.release.set()
            server.drain(timeout=WAIT)

    def test_builder_lifecycle_misuse(self):
        server = _server()
        try:
            builder = GenerationBuilder(server._shards[0], server._make_index)
            with pytest.raises(RuntimeError, match="never started"):
                builder.wait()
            builder.start()
            with pytest.raises(RuntimeError, match="already started"):
                builder.start()
            assert builder.wait(timeout=WAIT) is True
        finally:
            server.drain(timeout=WAIT)
