"""Unit tests for the T-overlap predicates."""

import math

import pytest

from repro import Dataset, OverlapPredicate, WeightedOverlapPredicate


@pytest.fixture
def data():
    return Dataset([(0, 1, 2, 3), (1, 2, 3, 4), (5, 6), (0, 5)])


class TestOverlapPredicate:
    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError):
            OverlapPredicate(0)

    def test_name(self):
        assert OverlapPredicate(3).name == "overlap(T=3)"

    def test_scores_are_unit(self, data):
        bound = OverlapPredicate(2).bind(data)
        assert bound.score_vector(0) == (1.0, 1.0, 1.0, 1.0)

    def test_norm_is_set_size(self, data):
        bound = OverlapPredicate(2).bind(data)
        assert bound.norm(0) == 4.0
        assert bound.norm(2) == 2.0

    def test_threshold_constant(self, data):
        bound = OverlapPredicate(2).bind(data)
        assert bound.threshold(4.0, 2.0) == 2.0

    def test_match_weight_counts_common_tokens(self, data):
        bound = OverlapPredicate(2).bind(data)
        assert bound.match_weight(0, 1) == 3.0
        assert bound.match_weight(0, 2) == 0.0
        assert bound.match_weight(0, 3) == 1.0

    def test_verify(self, data):
        bound = OverlapPredicate(3).bind(data)
        ok, similarity = bound.verify(0, 1)
        assert ok and similarity == 3.0
        ok, _similarity = bound.verify(0, 3)
        assert not ok

    def test_no_band_filter(self, data):
        assert OverlapPredicate(2).bind(data).band_filter() is None


class TestWeightedOverlapPredicate:
    def test_mapping_weights(self, data):
        predicate = WeightedOverlapPredicate(2.0, weights={1: 4.0, 2: 9.0})
        bound = predicate.bind(data)
        # score = sqrt(weight); matched-word product = weight.
        assert bound.match_weight(0, 1) == pytest.approx(4.0 + 9.0 + 1.0)

    def test_norm_is_total_weight(self, data):
        predicate = WeightedOverlapPredicate(2.0, weights={0: 2.0, 1: 3.0, 2: 4.0, 3: 5.0})
        bound = predicate.bind(data)
        assert bound.norm(0) == pytest.approx(2.0 + 3.0 + 4.0 + 5.0)

    def test_idf_weights_favour_rare_tokens(self, data):
        bound = WeightedOverlapPredicate(1.0, weights="idf").bind(data)
        # Token 4 appears once, token 1 twice: rare token scores higher.
        scores_r1 = dict(zip(data[1], bound.score_vector(1)))
        assert scores_r1[4] > scores_r1[1]

    def test_callable_weights(self, data):
        bound = WeightedOverlapPredicate(1.0, weights=lambda t: float(t + 1)).bind(data)
        assert bound.match_weight(2, 3) == pytest.approx(6.0)  # shared token 5

    def test_negative_weights_rejected(self, data):
        with pytest.raises(ValueError):
            WeightedOverlapPredicate(1.0, weights=lambda t: -1.0).bind(data)

    def test_idf_formula(self, data):
        bound = WeightedOverlapPredicate(1.0, weights="idf").bind(data)
        # Token 0 appears in 2 of 4 records.
        expected = math.log(1.0 + 4 / 2)
        scores_r0 = dict(zip(data[0], bound.score_vector(0)))
        assert scores_r0[0] ** 2 == pytest.approx(expected)
