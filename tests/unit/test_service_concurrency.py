"""SimilarityIndex under threads: the lock works, and its absence is caught.

Two halves of one regression:

* With :class:`NullRWLock` (the deliberate opt-out), racing ``add`` and
  ``query`` trip the :class:`ConcurrentMutation` invariant guard — the
  overlap is made deterministic with a tokenizer that parks inside the
  locked region.
* With the default :class:`RWLock`, the *same* schedule runs cleanly
  and a concurrent add/query workload produces exactly the results of
  a serial execution.
"""

import threading

import pytest

from repro.core.service import SimilarityIndex
from repro.predicates import JaccardPredicate, OverlapPredicate
from repro.runtime.errors import ConcurrentMutation
from repro.runtime.rwlock import NullRWLock
from repro.text.tokenizers import tokenize_words

WAIT = 10.0


class _GatedTokenizer:
    """Tokenizer that parks on ``gate`` for text marked ``HOLD:``.

    Tokenization happens inside the index's locked region, so this
    holds the read (or write) side open at an exact, controllable
    point — no sleeps, no racy timing.
    """

    def __init__(self):
        self.gate = threading.Event()
        self.parked = threading.Event()

    def __call__(self, text: str):
        if text.startswith("HOLD:"):
            self.parked.set()
            assert self.gate.wait(WAIT)
            text = text[len("HOLD:"):]
        return tokenize_words(text)


def _run(fn) -> threading.Thread:
    thread = threading.Thread(target=fn, daemon=True)
    thread.start()
    return thread


class TestUnlockedIndexTripsTheGuard:
    """NullRWLock: overlap happens, and the invariant check catches it."""

    def test_add_during_in_flight_query_raises(self):
        tokenizer = _GatedTokenizer()
        index = SimilarityIndex(
            OverlapPredicate(1), tokenizer=tokenizer, lock=NullRWLock()
        )
        index.add("alpha beta")
        outcome = {}

        def query():
            try:
                outcome["result"] = index.query("HOLD:alpha beta")
            except ConcurrentMutation as exc:
                outcome["error"] = exc

        thread = _run(query)
        assert tokenizer.parked.wait(WAIT)  # query holds the read side
        with pytest.raises(ConcurrentMutation) as err:
            index.add("gamma delta")
        assert err.value.attempted == "add"
        assert err.value.in_flight == "query"
        tokenizer.gate.set()
        thread.join(WAIT)
        assert not thread.is_alive()
        # The query itself was unharmed — only the mutation was refused.
        assert [m.rid_a for m in outcome["result"]] == [0]

    def test_query_during_in_flight_add_raises(self):
        tokenizer = _GatedTokenizer()
        index = SimilarityIndex(
            OverlapPredicate(1), tokenizer=tokenizer, lock=NullRWLock()
        )
        index.add("alpha beta")
        errors = []

        def add():
            index.add("HOLD:gamma delta")

        thread = _run(add)
        assert tokenizer.parked.wait(WAIT)  # add holds the write side
        with pytest.raises(ConcurrentMutation) as err:
            index.query("alpha")
        assert err.value.attempted == "query"
        assert err.value.in_flight == "add"
        tokenizer.gate.set()
        thread.join(WAIT)
        assert not thread.is_alive()
        assert len(index) == 2  # the add itself completed


class TestLockedIndexRunsTheSameScheduleCleanly:
    """Default RWLock: identical schedules, zero ConcurrentMutation."""

    def test_add_waits_for_in_flight_query(self):
        tokenizer = _GatedTokenizer()
        index = SimilarityIndex(OverlapPredicate(1), tokenizer=tokenizer)
        index.add("alpha beta")
        results = {}

        def query():
            results["matches"] = index.query("HOLD:alpha beta")

        query_thread = _run(query)
        assert tokenizer.parked.wait(WAIT)
        add_thread = _run(lambda: index.add("gamma delta"))
        add_thread.join(0.1)
        assert add_thread.is_alive()  # correctly blocked, not raising
        tokenizer.gate.set()
        for thread in (query_thread, add_thread):
            thread.join(WAIT)
            assert not thread.is_alive()
        assert [m.rid_a for m in results["matches"]] == [0]
        assert len(index) == 2

    def test_concurrent_queries_match_serial_execution_exactly(self):
        """One writer + many readers; final answers equal a serial run."""
        corpus = [
            f"record {i} shares tokens alpha beta {'gamma' if i % 2 else 'delta'}"
            for i in range(40)
        ]
        queries = ["alpha beta gamma", "alpha beta delta", "record tokens", "zzz"]

        live = SimilarityIndex(JaccardPredicate(0.4), tokenizer=tokenize_words)
        stop = threading.Event()
        failures = []

        def reader(query_text):
            while not stop.is_set():
                try:
                    for match in live.query(query_text):
                        assert 0 <= match.rid_a < len(live)
                except Exception as exc:  # noqa: BLE001 — fail the test
                    failures.append(exc)
                    return

        readers = [_run(lambda q=q: reader(q)) for q in queries for _ in range(2)]
        for text in corpus:
            live.add(text)
        stop.set()
        for thread in readers:
            thread.join(WAIT)
            assert not thread.is_alive()
        assert failures == []

        # The writer's insertion order is deterministic, so the final
        # index must agree with a never-shared serial one, exactly.
        serial = SimilarityIndex(JaccardPredicate(0.4), tokenizer=tokenize_words)
        for text in corpus:
            serial.add(text)
        for query_text in queries:
            assert [
                (m.rid_a, m.similarity) for m in live.query(query_text)
            ] == [
                (m.rid_a, m.similarity) for m in serial.query(query_text)
            ]
