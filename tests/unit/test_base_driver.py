"""Unit tests for the shared SetJoinAlgorithm driver machinery."""

import pytest

from repro import (
    Dataset,
    JaccardPredicate,
    OverlapPredicate,
    ProbeCountJoin,
    similarity_join,
)


class TestJoinMetadata:
    def test_result_records_names_and_time(self):
        data = Dataset([(0, 1), (0, 1)])
        result = ProbeCountJoin(variant="online").join(data, OverlapPredicate(2))
        assert result.algorithm == "probe-count-online"
        assert result.predicate == "overlap(T=2)"
        assert result.elapsed_seconds >= 0.0

    def test_counters_pairs_output_matches(self):
        data = Dataset([(0, 1, 2)] * 5)
        result = similarity_join(data, OverlapPredicate(3), algorithm="probe-count-sort")
        assert result.counters.pairs_output == len(result.pairs) == 10

    def test_verified_counter_at_least_output(self):
        data = Dataset([(0, 1, 2), (0, 1, 3), (9,)])
        result = similarity_join(data, JaccardPredicate(0.5), algorithm="probe-count-optmerge")
        assert result.counters.pairs_verified >= len(result.pairs)


class TestJoinBetweenEdges:
    def test_band_filter_applied_across_sides(self):
        vocab: dict = {}
        left = Dataset.from_token_lists([["a", "b"]], vocabulary=vocab)
        right = Dataset.from_token_lists(
            [["a", "b"], ["a", "b", "c", "d", "e", "f", "g", "h"]], vocabulary=vocab
        )
        result = ProbeCountJoin().join_between(left, right, JaccardPredicate(0.9))
        # Only the size-2 record passes; the size-8 one is band-filtered.
        assert result.pair_set() == {(0, 0)}

    def test_payloads_combined_for_verification(self):
        from repro.predicates.edit_distance import EditDistancePredicate, qgram_dataset

        vocab: dict = {}
        left_strings = ["database", "unrelated"]
        right_strings = ["databse"]
        left = qgram_dataset(left_strings)
        # Rebuild right over the same vocabulary object.
        from repro.predicates.edit_distance import numbered_qgrams

        right = Dataset.from_token_lists(
            [numbered_qgrams(s) for s in right_strings],
            payloads=right_strings,
            vocabulary=left.vocabulary,
        )
        result = ProbeCountJoin().join_between(left, right, EditDistancePredicate(1))
        assert result.pair_set() == {(0, 0)}

    def test_right_side_self_pairs_not_produced(self):
        vocab: dict = {}
        left = Dataset.from_token_lists([["x", "y"]], vocabulary=vocab)
        right = Dataset.from_token_lists(
            [["a", "b", "c"], ["a", "b", "c"]], vocabulary=vocab
        )
        result = ProbeCountJoin().join_between(left, right, OverlapPredicate(2))
        # The two identical right records must NOT pair with each other.
        assert result.pairs == []
