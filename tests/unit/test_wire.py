"""Wire protocol: framing, checksums, and the match-batch codec.

Every byte that crosses a shard boundary goes through this module, so
the properties pinned here are load-bearing for the whole remote tier:
round-trips are lossless (header fields AND float similarities),
corruption anywhere in a frame is detected as a typed
:class:`FrameChecksumError` instead of a silently-wrong answer, and
misframed streams (bad magic, foreign version, absurd lengths) are
rejected before any allocation or dispatch happens.
"""

import struct

import pytest

from repro.core.results import MatchPair
from repro.runtime.errors import (
    FrameChecksumError,
    JoinTimeout,
    WireProtocolError,
)
from repro.serving.transport import wire


def _roundtrip(raw: bytes) -> wire.Frame:
    """Feed encoded bytes to read_frame through a buffer reader."""
    view = memoryview(raw)
    state = {"offset": 0}

    def read_exactly(n: int) -> bytes:
        start = state["offset"]
        if start + n > len(view):
            raise ConnectionError("short read")
        state["offset"] = start + n
        return bytes(view[start : start + n])

    return wire.read_frame(read_exactly)


class TestFrameRoundTrip:
    def test_header_fields_survive(self):
        raw = wire.encode_frame(
            wire.OP_QUERY,
            b"payload-bytes",
            request_id=7,
            deadline=2.5,
            flags=wire.FLAG_RESPONSE,
            epoch=3,
            generation=41,
        )
        frame = _roundtrip(raw)
        assert frame.op == wire.OP_QUERY
        assert frame.request_id == 7
        assert frame.deadline == 2.5
        assert frame.epoch == 3
        assert frame.generation == 41
        assert frame.payload == b"payload-bytes"
        assert frame.is_response and not frame.is_error

    def test_empty_payload(self):
        frame = _roundtrip(wire.encode_frame(wire.OP_PING))
        assert frame.payload == b""
        assert frame.deadline == -1.0

    def test_error_flag(self):
        raw = wire.encode_frame(
            wire.OP_QUERY, flags=wire.FLAG_RESPONSE | wire.FLAG_ERROR
        )
        frame = _roundtrip(raw)
        assert frame.is_response and frame.is_error

    def test_oversized_payload_refused_at_encode(self):
        with pytest.raises(WireProtocolError):
            wire.encode_frame(wire.OP_ADD, b"x" * (wire.MAX_PAYLOAD + 1))


class TestCorruptionDetection:
    def test_every_flipped_byte_is_detected(self):
        """Flip each byte of a frame in turn: nothing gets through as a
        valid frame with different content."""
        raw = bytearray(
            wire.encode_frame(wire.OP_QUERY, b"abcdef", request_id=5, epoch=1)
        )
        for i in range(len(raw)):
            mutated = bytearray(raw)
            mutated[i] ^= 0xFF
            with pytest.raises((WireProtocolError, ConnectionError)):
                # FrameChecksumError for payload/CRC damage; plain
                # WireProtocolError when the flip lands on magic,
                # version, op, or blows the length past the bound; a
                # flip that yields an in-bounds bogus length stalls the
                # stream and dies as a connection error instead.
                _roundtrip(bytes(mutated))

    def test_checksum_error_is_typed_and_transient(self):
        raw = bytearray(wire.encode_frame(wire.OP_QUERY, b"abcdef"))
        raw[-1] ^= 0xFF  # damage the CRC trailer itself
        with pytest.raises(FrameChecksumError) as info:
            _roundtrip(bytes(raw))
        # Retry layers classify on OSError; a torn frame must be
        # retryable, unlike a protocol violation.
        assert isinstance(info.value, OSError)
        assert isinstance(info.value, WireProtocolError)

    def test_bad_magic(self):
        raw = bytearray(wire.encode_frame(wire.OP_PING))
        raw[0:2] = b"ZZ"
        with pytest.raises(WireProtocolError, match="magic"):
            _roundtrip(bytes(raw))

    def test_foreign_version(self):
        header = wire.HEADER.pack(
            wire.MAGIC, wire.VERSION + 1, wire.OP_PING, 0, 0, -1.0, 0, 0, 0
        )
        import zlib

        crc = struct.pack(">I", zlib.crc32(header) & 0xFFFFFFFF)
        with pytest.raises(WireProtocolError, match="version"):
            _roundtrip(header + crc)

    def test_absurd_length_rejected_before_allocation(self):
        header = wire.HEADER.pack(
            wire.MAGIC, wire.VERSION, wire.OP_PING, 0, 0, -1.0, 0, 0,
            wire.MAX_PAYLOAD + 1,
        )
        with pytest.raises(WireProtocolError, match="bound"):
            _roundtrip(header + b"\x00\x00\x00\x00")

    def test_unknown_op(self):
        raw = wire.encode_frame(wire.OP_PING)
        # Re-pack with an op outside the table but a valid CRC.
        header = wire.HEADER.pack(wire.MAGIC, wire.VERSION, 99, 0, 0, -1.0, 0, 0, 0)
        import zlib

        crc = struct.pack(">I", zlib.crc32(header) & 0xFFFFFFFF)
        with pytest.raises(WireProtocolError, match="op"):
            _roundtrip(header + crc)
        assert _roundtrip(raw).op == wire.OP_PING  # control: intact frame is fine

    def test_truncated_stream_is_a_connection_error(self):
        raw = wire.encode_frame(wire.OP_QUERY, b"abcdef")
        with pytest.raises(ConnectionError):
            _roundtrip(raw[: len(raw) // 2])


class TestMatchCodec:
    PAIRS = [
        MatchPair(0, 1, 0.5),
        MatchPair(7, 3, 1.0),
        MatchPair(-1, 2**40, 0.123456789012345),
    ]

    def test_batch_roundtrip_is_exact(self):
        decoded, offset = wire.decode_matches(wire.encode_matches(self.PAIRS))
        assert decoded == self.PAIRS
        # Floats travel as f64: bit-for-bit, not "close".
        assert [m.similarity for m in decoded] == [m.similarity for m in self.PAIRS]

    def test_empty_batch(self):
        decoded, _ = wire.decode_matches(wire.encode_matches([]))
        assert decoded == []

    def test_match_lists_roundtrip(self):
        lists = [self.PAIRS, [], [MatchPair(5, 5, 0.75)]]
        assert wire.decode_match_lists(wire.encode_match_lists(lists)) == lists

    def test_truncated_batch_is_typed(self):
        data = wire.encode_matches(self.PAIRS)
        with pytest.raises(WireProtocolError, match="truncated"):
            wire.decode_matches(data[:-4])
        with pytest.raises(WireProtocolError, match="truncated"):
            wire.decode_matches(b"\x00")


class TestErrorCodec:
    def test_plain_exception(self):
        record = wire.decode_error(wire.encode_error(ValueError("boom")))
        assert record == {"name": "ValueError", "message": "boom"}

    def test_timeout_carries_budget_fields(self):
        exc = JoinTimeout(elapsed=1.5, deadline=1.0)
        record = wire.decode_error(wire.encode_error(exc))
        assert record["name"] == "JoinTimeout"
        assert record["elapsed"] == 1.5
        assert record["deadline"] == 1.0

    def test_garbage_error_payload_is_typed(self):
        with pytest.raises(WireProtocolError):
            wire.decode_error(b"\xff\xfe")
        with pytest.raises(WireProtocolError, match="name"):
            wire.decode_error(wire.encode_json({"not": "an error"}))

    def test_undecodable_json(self):
        with pytest.raises(WireProtocolError):
            wire.decode_json(b"{truncated")
