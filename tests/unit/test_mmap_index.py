"""Unit tests for the memory-mapped columnar index (RPMX format).

Covers the writer/reader roundtrip (raw and compressed), every
corruption mode the format promises to catch as
:class:`SnapshotCorrupted` (truncation, bad magic, old format version,
byte-order mismatch, mangled directory, flipped posting and section
bytes), residency accounting against the memory-budget runtime, the
``index_backend`` knob's error surface, and the mapped serving state
behind ``SimilarityIndex.save(format='mmap')`` / ``load(mmap=True)``.
"""

import math
import os
from array import array

import pytest

from repro import Dataset, JaccardPredicate, OverlapPredicate
from repro.core.inverted_index import ScoredInvertedIndex
from repro.core.join import make_algorithm, similarity_join
from repro.core.service import SimilarityIndex
from repro.runtime.errors import ReadOnlyIndex, SnapshotCorrupted
from repro.storage.mmap_index import (
    JoinIndexBuilder,
    MappedIndexWriter,
    MappedInvertedIndex,
    mapped_blob_view,
    mapped_record_view,
    resolve_index_backend,
)
from repro.utils.counters import CostCounters
from tests.conftest import random_dataset

POSTINGS = {
    3: ([0, 2, 5, 9], [1.0, 0.5, 2.0, 1.5]),
    7: ([1], [3.0]),
    11: ([0, 1, 2, 3, 4, 5, 6, 7, 8, 9], [1.0] * 10),
    # spans multiple compressed blocks
    20: (list(range(0, 400, 3)), [0.25] * 134),
}


def write_index(path, *, compressed=False, sections=(), meta=None):
    writer = MappedIndexWriter(str(path), scored=True, compressed=compressed)
    for token, (ids, scores) in POSTINGS.items():
        writer.add_posting(token, ids, scores)
    for name, blob in sections:
        writer.add_section(name, blob)
    writer.finish(min_norm=1.5, n_entities=10, meta=meta)
    return str(path)


class TestRoundtrip:
    @pytest.mark.parametrize("compressed", [False, True])
    def test_postings_roundtrip(self, tmp_path, compressed):
        path = write_index(tmp_path / "ix.rpmx", compressed=compressed)
        with MappedInvertedIndex.open(path) as index:
            assert index.min_norm == 1.5
            assert index.n_entities == 10
            assert index.n_entries == sum(len(ids) for ids, _ in POSTINGS.values())
            assert len(index) == len(POSTINGS)
            assert 3 in index and 99 not in index
            for token, (ids, scores) in POSTINGS.items():
                plist = index.get(token)
                assert list(plist.ids) == ids
                assert list(plist.scores) == scores
                assert plist.max_score == max(scores)
                assert plist.sealed
                assert len(plist) == len(ids)
            assert index.get(99) is None
            assert index.read_posting(20) == POSTINGS[20][0]

    @pytest.mark.parametrize("compressed", [False, True])
    def test_id_column_sequence_surface(self, tmp_path, compressed):
        path = write_index(tmp_path / "ix.rpmx", compressed=compressed)
        with MappedInvertedIndex.open(path) as index:
            ids = index.get(20).ids
            expected = POSTINGS[20][0]
            assert len(ids) == len(expected)
            assert ids[0] == expected[0]
            assert ids[64] == expected[64]  # block-first fast path
            assert ids[65] == expected[65]
            assert ids[-1] == expected[-1]
            assert list(iter(ids)) == expected
            with pytest.raises(IndexError):
                ids[len(expected)]

    def test_probe_lists_contract(self, tmp_path):
        path = write_index(tmp_path / "ix.rpmx")
        with MappedInvertedIndex.open(path) as index:
            lists = index.probe_lists((3, 4, 7), (1.0, 1.0, 0.0))
            # unknown token skipped, zero probe score skipped
            assert [list(plist.ids) for plist, _ in lists] == [[0, 2, 5, 9]]
            assert [score for _, score in lists] == [1.0]

    def test_unit_score_index_synthesizes_scores(self, tmp_path):
        writer = MappedIndexWriter(str(tmp_path / "ix.rpmx"), scored=False)
        writer.add_posting(5, [1, 4, 6])
        writer.finish()
        with MappedInvertedIndex.open(str(tmp_path / "ix.rpmx")) as index:
            plist = index.get(5)
            assert list(plist.scores) == [1.0, 1.0, 1.0]
            assert plist.scores[-1] == 1.0
            assert plist.max_score == 1.0

    def test_sections_roundtrip(self, tmp_path):
        path = write_index(
            tmp_path / "ix.rpmx", sections=[("blob", b"hello world")]
        )
        with MappedInvertedIndex.open(path) as index:
            assert index.has_section("blob")
            assert bytes(index.section("blob")) == b"hello world"
            assert not index.has_section("other")
            with pytest.raises(KeyError):
                index.section("other")

    def test_meta_roundtrip(self, tmp_path):
        path = write_index(tmp_path / "ix.rpmx", meta={"kind": "test", "x": 1})
        with MappedInvertedIndex.open(path) as index:
            assert index.meta == {"kind": "test", "x": 1}

    def test_empty_index(self, tmp_path):
        writer = MappedIndexWriter(str(tmp_path / "ix.rpmx"))
        writer.finish()
        with MappedInvertedIndex.open(str(tmp_path / "ix.rpmx")) as index:
            assert len(index) == 0
            assert index.min_norm == math.inf
            assert index.probe_lists((1, 2), (1.0, 1.0)) == []


class TestWriter:
    def test_rejects_unsorted_ids(self, tmp_path):
        writer = MappedIndexWriter(str(tmp_path / "ix.rpmx"))
        with pytest.raises(ValueError, match="strictly increasing"):
            writer.add_posting(1, [3, 2], [1.0, 1.0])
        writer.abort()

    def test_scored_writer_needs_scores(self, tmp_path):
        writer = MappedIndexWriter(str(tmp_path / "ix.rpmx"))
        with pytest.raises(ValueError, match="score column"):
            writer.add_posting(1, [1, 2])
        writer.abort()

    def test_duplicate_section_rejected(self, tmp_path):
        writer = MappedIndexWriter(str(tmp_path / "ix.rpmx"))
        writer.add_section("s", b"x")
        with pytest.raises(ValueError, match="duplicate"):
            writer.add_section("s", b"y")
        writer.abort()

    def test_empty_posting_skipped(self, tmp_path):
        writer = MappedIndexWriter(str(tmp_path / "ix.rpmx"))
        writer.add_posting(1, [], [])
        writer.finish()
        with MappedInvertedIndex.open(str(tmp_path / "ix.rpmx")) as index:
            assert len(index) == 0

    def test_abort_leaves_nothing(self, tmp_path):
        path = tmp_path / "ix.rpmx"
        writer = MappedIndexWriter(str(path))
        writer.add_posting(1, [1], [1.0])
        writer.abort()
        assert list(tmp_path.iterdir()) == []

    def test_context_manager_aborts_on_error(self, tmp_path):
        path = tmp_path / "ix.rpmx"
        with pytest.raises(RuntimeError):
            with MappedIndexWriter(str(path)) as writer:
                writer.add_posting(1, [1], [1.0])
                raise RuntimeError("boom")
        assert list(tmp_path.iterdir()) == []

    def test_finish_is_atomic(self, tmp_path):
        # Nothing lands at the final path until finish() completes.
        path = tmp_path / "ix.rpmx"
        writer = MappedIndexWriter(str(path))
        writer.add_posting(1, [1], [1.0])
        assert not path.exists()
        writer.finish()
        assert path.exists()
        assert len(list(tmp_path.iterdir())) == 1  # temp gone


class TestCorruption:
    """Every damage mode raises SnapshotCorrupted — never wrong ids."""

    def test_truncated_below_preamble(self, tmp_path):
        path = tmp_path / "ix.rpmx"
        path.write_bytes(b"RPMX1\n\x02")
        with pytest.raises(SnapshotCorrupted, match="truncated"):
            MappedInvertedIndex.open(str(path))

    def test_truncated_mid_directory(self, tmp_path):
        path = write_index(tmp_path / "ix.rpmx")
        data = open(path, "rb").read()
        open(path, "wb").write(data[: len(data) - 10])
        with pytest.raises(SnapshotCorrupted):
            MappedInvertedIndex.open(path)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "ix.rpmx"
        path.write_bytes(b"NOPE!\n" + bytes(64))
        with pytest.raises(SnapshotCorrupted, match="bad magic"):
            MappedInvertedIndex.open(str(path))

    def test_old_rpix_version_clear_error(self, tmp_path):
        path = tmp_path / "ix.rpmx"
        path.write_bytes(b"RPIX1\n" + bytes(64))
        with pytest.raises(SnapshotCorrupted, match="version 1"):
            MappedInvertedIndex.open(str(path))

    def test_future_version_rejected(self, tmp_path):
        path = write_index(tmp_path / "ix.rpmx")
        with open(path, "r+b") as handle:
            handle.seek(6)
            handle.write((99).to_bytes(2, "little"))
        with pytest.raises(SnapshotCorrupted, match="version 99"):
            MappedInvertedIndex.open(path)

    def test_byte_order_mismatch(self, tmp_path):
        import sys

        path = write_index(tmp_path / "ix.rpmx")
        with open(path, "r+b") as handle:
            handle.seek(8)
            flags = handle.read(1)[0]
            handle.seek(8)
            handle.write(bytes([flags ^ 4]))  # flip _FLAG_BIG_ENDIAN
        with pytest.raises(SnapshotCorrupted, match="byte-order"):
            MappedInvertedIndex.open(path)
        assert sys.byteorder == "little" or True

    def test_mangled_header_directory_crc(self, tmp_path):
        path = write_index(tmp_path / "ix.rpmx")
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.seek(size - 5)  # inside the JSON directory
            byte = handle.read(1)[0]
            handle.seek(size - 5)
            handle.write(bytes([byte ^ 0xFF]))
        with pytest.raises(SnapshotCorrupted, match="checksum"):
            MappedInvertedIndex.open(path)

    def test_directory_bounds_mangled(self, tmp_path):
        path = write_index(tmp_path / "ix.rpmx")
        with open(path, "r+b") as handle:
            handle.seek(16)  # directory offset field
            handle.write((2**40).to_bytes(8, "little"))
        with pytest.raises(SnapshotCorrupted, match="directory"):
            MappedInvertedIndex.open(path)

    @pytest.mark.parametrize("compressed", [False, True])
    def test_flipped_posting_byte_detected_on_probe(self, tmp_path, compressed):
        path = write_index(tmp_path / "ix.rpmx", compressed=compressed)
        # Flip one byte inside the first posting region (starts at 40).
        with open(path, "r+b") as handle:
            handle.seek(44)
            byte = handle.read(1)[0]
            handle.seek(44)
            handle.write(bytes([byte ^ 0x01]))
        index = MappedInvertedIndex.open(path)
        try:
            # Open succeeds (lazy verification); the touch raises.
            with pytest.raises(SnapshotCorrupted, match="posting column"):
                index.get(3)
        finally:
            index.close()

    def test_flipped_section_byte_detected_on_access(self, tmp_path):
        path = write_index(
            tmp_path / "ix.rpmx", sections=[("blob", b"payload-bytes-here")]
        )
        index = MappedInvertedIndex.open(path)
        offset, _length, _crc = index._sections["blob"]
        index.close()
        with open(path, "r+b") as handle:
            handle.seek(offset + 2)
            byte = handle.read(1)[0]
            handle.seek(offset + 2)
            handle.write(bytes([byte ^ 0x10]))
        index = MappedInvertedIndex.open(path)
        try:
            with pytest.raises(SnapshotCorrupted, match="section"):
                index.section("blob")
        finally:
            index.close()

    def test_undamaged_region_still_readable_after_other_region_flagged(
        self, tmp_path
    ):
        path = write_index(tmp_path / "ix.rpmx")
        with open(path, "r+b") as handle:
            handle.seek(44)
            byte = handle.read(1)[0]
            handle.seek(44)
            handle.write(bytes([byte ^ 0x01]))
        index = MappedInvertedIndex.open(path)
        try:
            with pytest.raises(SnapshotCorrupted):
                index.get(3)
            assert index.read_posting(7) == POSTINGS[7][0]
        finally:
            index.close()


class TestResidencyAccounting:
    def test_directory_then_first_touch(self, tmp_path):
        path = write_index(tmp_path / "ix.rpmx")
        counters = CostCounters()
        with MappedInvertedIndex.open(path) as index:
            index.attach_counters(counters)
            assert counters.index_entries == len(POSTINGS)
            index.get(3)
            assert counters.index_entries == len(POSTINGS) + 4
            # Second touch adds nothing: residency counts pages, not reads.
            index.get(3)
            assert counters.index_entries == len(POSTINGS) + 4
            index.get(7)
            assert counters.index_entries == len(POSTINGS) + 5
            assert index.touched_entries == 5
            assert index.lists_read == 3
            assert index.resident_bytes() > index.directory_bytes > 0

    def test_memory_budget_sees_touched_postings(self, tmp_path):
        from repro.runtime.context import JoinContext

        data = random_dataset(seed=40)
        # A budget far above directory + touched postings: passes.
        context = JoinContext(memory_budget_entries=100_000)
        result = similarity_join(
            data,
            OverlapPredicate(3),
            algorithm="probe-count-optmerge",
            context=context,
            index_backend="mmap",
        )
        assert result.counters.index_entries > 0
        assert result.counters.index_entries <= 100_000


class TestJoinIndexBuilder:
    def test_matches_in_memory_index(self):
        data = random_dataset(seed=41)
        bound = JaccardPredicate(0.5).bind(data)
        memory = ScoredInvertedIndex()
        builder = JoinIndexBuilder()
        for rid in range(len(data)):
            vector = bound.cached_score_vector(rid)
            memory.insert(rid, data[rid], vector, bound.norm(rid), CostCounters())
            builder.insert(rid, data[rid], vector, bound.norm(rid))
        memory.seal()
        mapped = builder.finish()
        try:
            assert mapped.min_norm == memory.min_norm
            assert mapped.n_entries == memory.n_entries
            for token in memory.tokens():
                expected = memory.get(token)
                got = mapped.get(token)
                assert list(got.ids) == list(expected.ids)
                assert list(got.scores) == list(expected.scores)
                assert got.max_score == expected.max_score
        finally:
            mapped.dispose()

    def test_temp_file_removed_on_dispose(self):
        builder = JoinIndexBuilder()
        builder.insert(0, (1, 2), (1.0, 1.0), 2.0)
        index = builder.finish()
        path = index.path
        assert os.path.exists(path)
        index.dispose()
        assert not os.path.exists(path)

    def test_dispose_with_live_views_is_safe(self):
        builder = JoinIndexBuilder()
        builder.insert(0, (1, 2), (1.0, 1.0), 2.0)
        index = builder.finish()
        plist = index.get(1)
        index.dispose()  # caller still holds a view: must not raise
        assert list(plist.ids) == [0]
        assert not os.path.exists(index.path)

    def test_pinned_path_not_removed(self, tmp_path):
        path = str(tmp_path / "join.rpmx")
        builder = JoinIndexBuilder(path)
        builder.insert(0, (1,), (1.0,), 1.0)
        index = builder.finish()
        index.dispose()
        assert os.path.exists(path)


class TestIndexBackendKnob:
    def test_resolve(self):
        assert resolve_index_backend(None) == "memory"
        assert resolve_index_backend("memory") == "memory"
        assert resolve_index_backend("mmap") == "mmap"
        with pytest.raises(ValueError, match="unknown index backend"):
            resolve_index_backend("disk")

    def test_make_algorithm_rejects_bad_backend(self):
        with pytest.raises(ValueError, match="unknown index backend"):
            make_algorithm("probe-count-optmerge", index_backend="nope")

    @pytest.mark.parametrize(
        "algorithm",
        [
            "naive",
            "probe-count-online",
            "probe-count-sort",
            "pair-count",
            "word-groups",
            "probe-cluster",
            "prefix-filter",
            "positional-filter",
        ],
    )
    def test_unsupported_algorithms_raise_at_join(self, algorithm):
        data = Dataset([(0, 1), (1, 2)])
        algo = make_algorithm(algorithm, index_backend="mmap")
        with pytest.raises(ValueError, match="does not support index_backend"):
            algo.join(data, OverlapPredicate(1))

    def test_join_between_rejects_mmap(self):
        data = Dataset([(0, 1), (1, 2)])
        algo = make_algorithm("probe-count-optmerge", index_backend="mmap")
        with pytest.raises(ValueError, match="join_between"):
            algo.join_between(data, data, OverlapPredicate(1))

    def test_index_path_pins_the_file(self, tmp_path):
        data = random_dataset(seed=42, n_base=20)
        path = str(tmp_path / "probe.rpmx")
        result = similarity_join(
            data,
            OverlapPredicate(3),
            algorithm="probe-count-optmerge",
            index_backend="mmap",
            index_path=path,
        )
        assert os.path.exists(path)
        with MappedInvertedIndex.open(path) as index:
            assert index.n_entities == len(data)
        baseline = similarity_join(data, OverlapPredicate(3))
        assert result.pair_set() == baseline.pair_set()

    def test_temp_index_cleaned_up(self, tmp_path, monkeypatch):
        import tempfile as _tempfile

        monkeypatch.setattr(_tempfile, "tempdir", str(tmp_path))
        data = random_dataset(seed=43, n_base=20)
        similarity_join(
            data,
            OverlapPredicate(3),
            algorithm="probe-count-optmerge",
            index_backend="mmap",
        )
        assert list(tmp_path.iterdir()) == []


class TestMappedViews:
    def test_record_view_offset_mismatch(self, tmp_path):
        writer = MappedIndexWriter(str(tmp_path / "ix.rpmx"))
        writer.add_section("records_tokens", array("q", [1, 2, 3]).tobytes())
        writer.add_section("records_offsets", array("q", [0, 2]).tobytes())
        writer.finish()
        with MappedInvertedIndex.open(str(tmp_path / "ix.rpmx")) as index:
            with pytest.raises(SnapshotCorrupted, match="records_offsets"):
                mapped_record_view(index)

    def test_blob_view_offset_mismatch(self, tmp_path):
        writer = MappedIndexWriter(str(tmp_path / "ix.rpmx"))
        writer.add_section("payloads", b"abcdef")
        writer.add_section("payload_offsets", array("q", [0, 99]).tobytes())
        writer.finish()
        with MappedInvertedIndex.open(str(tmp_path / "ix.rpmx")) as index:
            with pytest.raises(SnapshotCorrupted, match="payload_offsets"):
                mapped_blob_view(index, "payloads", "payload_offsets", bytes)

    def test_non_int64_offsets_column(self, tmp_path):
        writer = MappedIndexWriter(str(tmp_path / "ix.rpmx"))
        writer.add_section("records_tokens", b"xyz")  # not a multiple of 8
        writer.add_section("records_offsets", array("q", [0, 0]).tobytes())
        writer.finish()
        with MappedInvertedIndex.open(str(tmp_path / "ix.rpmx")) as index:
            with pytest.raises(SnapshotCorrupted, match="int64"):
                mapped_record_view(index)


class TestMappedService:
    DOCS = [
        "a b c d",
        "a b c e",
        "x y z",
        "a b d e f",
        "c d e",
        "m n o p q",
    ]

    def build(self, **kwargs):
        service = SimilarityIndex(
            JaccardPredicate(0.4), tokenizer=str.split, **kwargs
        )
        for i, doc in enumerate(self.DOCS):
            service.add(doc, payload={"doc": i})
        return service

    @staticmethod
    def answers(service, queries):
        return [
            [(p.rid_a, p.rid_b, p.similarity) for p in service.query(q)]
            for q in queries
        ]

    def test_mmap_load_equals_snapshot_load(self, tmp_path):
        service = self.build()
        snap, mpath = str(tmp_path / "i.snap"), str(tmp_path / "i.rpmx")
        service.save(snap)
        service.save(mpath, format="mmap")
        queries = ["a b c", "c d e f", "zzz", "m n o"]
        predicate = JaccardPredicate(0.4)
        from_snapshot = SimilarityIndex.load(snap, predicate, tokenizer=str.split)
        mapped = SimilarityIndex.load(
            mpath, predicate, tokenizer=str.split, mmap=True
        )
        try:
            assert self.answers(mapped, queries) == self.answers(
                from_snapshot, queries
            )
            batched = mapped.query_batch(queries)
            assert [
                [(p.rid_a, p.rid_b, p.similarity) for p in matches]
                for matches in batched
            ] == self.answers(from_snapshot, queries)
            assert mapped.payload(3) == {"doc": 3}
            assert mapped.export_records() == from_snapshot.export_records()
            assert len(mapped) == len(self.DOCS)
        finally:
            mapped.close()

    def test_mapped_service_is_read_only(self, tmp_path):
        service = self.build()
        mpath = str(tmp_path / "i.rpmx")
        service.save(mpath, format="mmap")
        mapped = SimilarityIndex.load(
            mpath, JaccardPredicate(0.4), tokenizer=str.split, mmap=True
        )
        try:
            with pytest.raises(ReadOnlyIndex, match="add"):
                mapped.add("new doc")
            with pytest.raises(ReadOnlyIndex, match="rebind"):
                mapped.rebind()
        finally:
            mapped.close()

    def test_snapshot_written_from_mapped_service(self, tmp_path):
        service = self.build()
        mpath = str(tmp_path / "i.rpmx")
        service.save(mpath, format="mmap")
        mapped = SimilarityIndex.load(
            mpath, JaccardPredicate(0.4), tokenizer=str.split, mmap=True
        )
        try:
            snap = str(tmp_path / "back.snap")
            mapped.save(snap)
            restored = SimilarityIndex.load(
                snap, JaccardPredicate(0.4), tokenizer=str.split
            )
            queries = ["a b c", "c d e"]
            assert self.answers(restored, queries) == self.answers(mapped, queries)
        finally:
            mapped.close()

    def test_bitmap_filter_rejected_with_mmap(self, tmp_path):
        service = self.build()
        mpath = str(tmp_path / "i.rpmx")
        service.save(mpath, format="mmap")
        with pytest.raises(ValueError, match="bitmap_filter"):
            SimilarityIndex.load(
                mpath, JaccardPredicate(0.4), mmap=True, bitmap_filter=True
            )

    def test_unknown_format_rejected(self, tmp_path):
        service = self.build()
        with pytest.raises(ValueError, match="unknown save format"):
            service.save(str(tmp_path / "x"), format="pickle")

    def test_mmap_load_of_join_index_rejected(self, tmp_path):
        builder = JoinIndexBuilder(str(tmp_path / "join.rpmx"))
        builder.insert(0, (1, 2), (1.0, 1.0), 2.0)
        builder.finish().close()
        with pytest.raises(SnapshotCorrupted, match="serving state"):
            SimilarityIndex.load(
                str(tmp_path / "join.rpmx"), JaccardPredicate(0.4), mmap=True
            )

    def test_codec_payloads_roundtrip(self, tmp_path):
        class Codec:
            def encode(self, payload):
                return ",".join(sorted(payload))

            def decode(self, text):
                return frozenset(text.split(","))

        from repro.runtime.errors import SnapshotEncodingError

        service = SimilarityIndex(JaccardPredicate(0.4), tokenizer=str.split)
        service.add("a b c", payload=frozenset({"tu", "ple"}))
        mpath = str(tmp_path / "i.rpmx")
        service.save(mpath, codec=Codec(), format="mmap")
        mapped = SimilarityIndex.load(
            mpath, JaccardPredicate(0.4), tokenizer=str.split,
            codec=Codec(), mmap=True,
        )
        try:
            assert mapped.payload(0) == frozenset({"tu", "ple"})
        finally:
            mapped.close()
        # Without the codec, the tagged payload raises on access.
        mapped = SimilarityIndex.load(
            mpath, JaccardPredicate(0.4), tokenizer=str.split, mmap=True
        )
        try:
            with pytest.raises(SnapshotEncodingError, match="codec"):
                mapped.payload(0)
        finally:
            mapped.close()

    def test_empty_service_roundtrip(self, tmp_path):
        service = SimilarityIndex(JaccardPredicate(0.4), tokenizer=str.split)
        mpath = str(tmp_path / "empty.rpmx")
        service.save(mpath, format="mmap")
        mapped = SimilarityIndex.load(
            mpath, JaccardPredicate(0.4), tokenizer=str.split, mmap=True
        )
        try:
            assert mapped.query("a b") == []
            assert len(mapped) == 0
        finally:
            mapped.close()

    def test_large_index_opens_fast_with_bounded_residency(self, tmp_path):
        """A multi-hundred-MB mapped index opens in <100ms.

        Open cost is parsing the directory, not the posting columns, so
        we graft ~240MB of synthetic fat postings (token ids far outside
        the vocabulary — never probed) onto a real service save and
        check both the open time and that resident memory stays bounded
        by the directory, not the file.
        """
        import gc
        import resource
        import shutil
        import time

        service = self.build()
        seed_path = str(tmp_path / "seed.rpmx")
        big_path = str(tmp_path / "big.rpmx")
        service.save(seed_path, format="mmap")
        if shutil.disk_usage(str(tmp_path)).free < 2 * 300 * 1024 * 1024:
            pytest.skip("not enough free disk for a 240MB index")

        fat_ids = array("q", range(1_000_000))
        fat_scores = array("d", bytes(8) * 1_000_000)
        for i in range(len(fat_scores)):
            fat_scores[i] = 1.0
        with MappedInvertedIndex.open(seed_path) as seed:
            writer = MappedIndexWriter(big_path, scored=True, compressed=False)
            for token in seed.tokens():
                plist = seed.get(token)
                writer.add_posting(
                    token,
                    array("q", plist.ids),
                    array("d", plist.scores),
                    max_score=plist.max_score,
                )
            for i in range(15):
                writer.add_posting(10**7 + i, fat_ids, fat_scores, max_score=1.0)
            for name in seed._sections:
                writer.add_section(name, bytes(seed.section(name)))
            writer.finish(
                min_norm=seed.min_norm,
                n_entities=seed.n_entities,
                meta=dict(seed.meta),
            )
        del fat_ids, fat_scores
        assert os.path.getsize(big_path) > 200 * 1024 * 1024

        gc.collect()
        rss_before = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        open_times = []
        predicate = JaccardPredicate(0.4)
        for _ in range(3):
            start = time.perf_counter()
            mapped = SimilarityIndex.load(
                big_path, predicate, tokenizer=str.split, mmap=True
            )
            open_times.append(time.perf_counter() - start)
            mapped.close()
        assert min(open_times) < 0.1, f"open times: {open_times}"

        mapped = SimilarityIndex.load(
            big_path, predicate, tokenizer=str.split, mmap=True
        )
        try:
            assert [
                (p.rid_a, p.rid_b) for p in mapped.query("a b c")
            ], "grafted index must still answer real queries"
            rss_after = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            # ru_maxrss is KiB on Linux. Opening and querying a 240MB
            # file must not fault in anything near the posting columns.
            assert (rss_after - rss_before) * 1024 < 64 * 1024 * 1024, (
                f"resident grew by {(rss_after - rss_before) // 1024} MiB"
            )
            assert mapped._index.resident_bytes() < 4 * 1024 * 1024
        finally:
            mapped.close()
        os.remove(big_path)

    def test_flipped_payload_byte_is_typed_error(self, tmp_path):
        service = self.build()
        mpath = str(tmp_path / "i.rpmx")
        service.save(mpath, format="mmap")
        with MappedInvertedIndex.open(mpath) as probe:
            offset, _length, _crc = probe._sections["payloads"]
        with open(mpath, "r+b") as handle:
            handle.seek(offset + 1)
            byte = handle.read(1)[0]
            handle.seek(offset + 1)
            handle.write(bytes([byte ^ 0x20]))
        with pytest.raises(SnapshotCorrupted):
            mapped = SimilarityIndex.load(
                mpath, JaccardPredicate(0.4), tokenizer=str.split, mmap=True
            )
            try:
                mapped.payload(0)
            finally:
                mapped.close()
