"""Unit tests for TF-IDF corpus statistics."""

import math

import pytest

from repro.text.tfidf import CorpusStats, tf_idf


class TestTfIdfFunction:
    def test_single_occurrence(self):
        # tf=1 -> first factor is 1.
        assert tf_idf(1, 10, 100) == pytest.approx(math.log(1 + 100 / 10))

    def test_zero_term_freq(self):
        assert tf_idf(0, 10, 100) == 0.0

    def test_higher_tf_scores_more(self):
        assert tf_idf(5, 10, 100) > tf_idf(1, 10, 100)

    def test_rarer_words_score_more(self):
        assert tf_idf(1, 2, 100) > tf_idf(1, 50, 100)


class TestCorpusStats:
    @pytest.fixture
    def stats(self):
        return CorpusStats([(1, 2, 3), (1, 2), (1,)])

    def test_counts(self, stats):
        assert stats.n_records == 3
        assert stats.frequency == {1: 3, 2: 2, 3: 1}

    def test_idf_ordering(self, stats):
        # Rarer token -> higher IDF.
        assert stats.idf(3) > stats.idf(2) > stats.idf(1)

    def test_idf_unseen_token_smoothed(self, stats):
        assert stats.idf(99) == pytest.approx(math.log(1 + 3 / 1))

    def test_record_norm(self, stats):
        expected = math.sqrt(stats.score(1) ** 2 + stats.score(3) ** 2)
        assert stats.record_norm((1, 3)) == pytest.approx(expected)

    def test_normalized_scores_unit_norm(self, stats):
        weights = stats.normalized_scores((1, 2, 3))
        assert sum(w * w for w in weights.values()) == pytest.approx(1.0)

    def test_normalized_scores_empty_record(self, stats):
        assert stats.normalized_scores(()) == {}

    def test_cosine_identity(self, stats):
        # A record has cosine 1 with itself under normalized scores.
        weights = stats.normalized_scores((1, 2, 3))
        dot = sum(w * w for w in weights.values())
        assert dot == pytest.approx(1.0)
