"""Reader–writer lock semantics: sharing, exclusion, writer preference."""

import threading
import time

from repro.runtime.rwlock import NullRWLock, RWLock

#: Generous bound for "a thread that should finish promptly" — the
#: tests never sleep this long unless something deadlocked.
JOIN_TIMEOUT = 10.0


def _start(fn) -> threading.Thread:
    thread = threading.Thread(target=fn, daemon=True)
    thread.start()
    return thread


class TestSharedReads:
    def test_two_readers_hold_simultaneously(self):
        lock = RWLock()
        both_in = threading.Barrier(2, timeout=JOIN_TIMEOUT)
        peak = []

        def reader():
            with lock.read_locked():
                both_in.wait()  # deadlocks unless reads really share
                peak.append(lock.active_readers)

        threads = [_start(reader), _start(reader)]
        for thread in threads:
            thread.join(JOIN_TIMEOUT)
            assert not thread.is_alive(), "readers failed to share the lock"
        assert max(peak) == 2

    def test_counts_return_to_zero(self):
        lock = RWLock()
        with lock.read_locked():
            assert lock.active_readers == 1
        assert lock.active_readers == 0
        with lock.write_locked():
            assert lock.writer_active
        assert not lock.writer_active


class TestExclusion:
    def test_writer_excludes_readers_and_writers(self):
        lock = RWLock()
        writer_in = threading.Event()
        release_writer = threading.Event()
        observed = []

        def writer():
            with lock.write_locked():
                writer_in.set()
                release_writer.wait(JOIN_TIMEOUT)

        def reader():
            with lock.read_locked():
                observed.append(("reader", lock.writer_active))

        def second_writer():
            with lock.write_locked():
                observed.append(("writer", lock.active_readers))

        writer_thread = _start(writer)
        assert writer_in.wait(JOIN_TIMEOUT)
        contenders = [_start(reader), _start(second_writer)]
        time.sleep(0.05)
        # Both contenders are blocked while the writer holds the lock.
        assert observed == []
        release_writer.set()
        for thread in [writer_thread] + contenders:
            thread.join(JOIN_TIMEOUT)
            assert not thread.is_alive()
        # Each contender saw no overlapping writer/readers once it ran.
        assert ("reader", False) in observed
        assert ("writer", 0) in observed

    def test_waiting_writer_blocks_new_readers(self):
        """Writer preference: a queued writer runs before later readers."""
        lock = RWLock()
        first_reader_in = threading.Event()
        release_first_reader = threading.Event()
        order = []

        def first_reader():
            with lock.read_locked():
                first_reader_in.set()
                release_first_reader.wait(JOIN_TIMEOUT)

        def writer():
            with lock.write_locked():
                order.append("writer")

        def late_reader():
            with lock.read_locked():
                order.append("late-reader")

        holder = _start(first_reader)
        assert first_reader_in.wait(JOIN_TIMEOUT)
        writer_thread = _start(writer)
        time.sleep(0.05)  # let the writer queue up
        late = _start(late_reader)
        time.sleep(0.05)
        assert order == []  # late reader must not sneak past the writer
        release_first_reader.set()
        for thread in (holder, writer_thread, late):
            thread.join(JOIN_TIMEOUT)
            assert not thread.is_alive()
        assert order[0] == "writer"


class TestNullRWLock:
    def test_no_blocking_and_racy_tallies(self):
        lock = NullRWLock()
        with lock.read_locked():
            # A null lock never blocks: the "conflicting" write side is
            # freely acquirable, and the tallies expose the overlap.
            with lock.write_locked():
                assert lock.active_readers == 1
                assert lock.writer_active
        assert lock.active_readers == 0
        assert not lock.writer_active
