"""Unit tests for the synthetic dataset generators."""

import random

import pytest

from repro.datagen import (
    AddressGenerator,
    CitationGenerator,
    address_all_3grams,
    address_name_3grams,
    citation_all_3grams,
    citation_all_words,
)
from repro.datagen.duplicates import make_typo, perturb_text
from repro.datagen.zipf import ZipfVocabulary, pseudo_word


class TestZipfVocabulary:
    def test_size_validation(self):
        with pytest.raises(ValueError):
            ZipfVocabulary(0)

    def test_distinct_words(self):
        vocab = ZipfVocabulary(200, rng=random.Random(1))
        assert len(set(vocab.words)) == 200

    def test_deterministic_per_seed(self):
        a = ZipfVocabulary(50, rng=random.Random(2))
        b = ZipfVocabulary(50, rng=random.Random(2))
        assert a.words == b.words
        assert [a.sample() for _ in range(20)] == [b.sample() for _ in range(20)]

    def test_skewed_sampling(self):
        vocab = ZipfVocabulary(500, exponent=1.1, rng=random.Random(3))
        counts: dict[str, int] = {}
        for _ in range(5000):
            word = vocab.sample()
            counts[word] = counts.get(word, 0) + 1
        top_word_share = max(counts.values()) / 5000
        assert top_word_share > 0.05  # heavy head

    def test_sample_distinct(self):
        vocab = ZipfVocabulary(30, rng=random.Random(4))
        sample = vocab.sample_distinct(10)
        assert len(sample) == len(set(sample)) == 10

    def test_sample_distinct_too_many(self):
        vocab = ZipfVocabulary(5, rng=random.Random(4))
        with pytest.raises(ValueError):
            vocab.sample_distinct(6)


class TestPerturbations:
    def test_make_typo_single_edit(self):
        rng = random.Random(5)
        for _ in range(100):
            word = "similarity"
            typo = make_typo(word, rng)
            assert abs(len(typo) - len(word)) <= 1

    def test_make_typo_empty(self):
        assert make_typo("", random.Random(0)) == ""

    def test_perturb_text_changes_something_usually(self):
        rng = random.Random(6)
        text = "alpha beta gamma delta epsilon"
        changed = sum(perturb_text(text, rng, 2) != text for _ in range(50))
        assert changed > 40

    def test_perturb_deterministic(self):
        a = perturb_text("one two three four", random.Random(7), 2)
        b = perturb_text("one two three four", random.Random(7), 2)
        assert a == b


class TestCitationGenerator:
    def test_count(self):
        assert len(CitationGenerator(seed=1).generate(100)) == 100

    def test_deterministic(self):
        a = CitationGenerator(seed=2).generate(50)
        b = CitationGenerator(seed=2).generate(50)
        assert [r.text() for r in a] == [r.text() for r in b]

    def test_duplicate_fraction_validation(self):
        with pytest.raises(ValueError):
            CitationGenerator(duplicate_fraction=1.0)

    def test_contains_near_duplicates(self):
        from repro import Dataset, JaccardPredicate, NaiveJoin
        from repro.text.tokenizers import tokenize_words

        texts = [r.text() for r in CitationGenerator(seed=3).generate(120)]
        data = Dataset.from_texts(texts, tokenize_words)
        result = NaiveJoin().join(data, JaccardPredicate(0.6))
        assert len(result.pairs) > 5

    def test_text_has_expected_fields(self):
        record = CitationGenerator(seed=4).generate(1)[0]
        text = record.text()
        assert str(record.year) in text
        assert "pages" in text


class TestAddressGenerator:
    def test_count_and_determinism(self):
        a = AddressGenerator(seed=1).generate(80)
        b = AddressGenerator(seed=1).generate(80)
        assert len(a) == 80
        assert [r.text() for r in a] == [r.text() for r in b]

    def test_name_text_is_subset_of_text(self):
        record = AddressGenerator(seed=2).generate(1)[0]
        assert record.name_text() in record.text()

    def test_pin_format(self):
        for record in AddressGenerator(seed=3).generate(20):
            assert record.pin.startswith("4110")
            assert len(record.pin) == 6


class TestTable1Builders:
    @pytest.mark.parametrize(
        "builder,paper_avg,tolerance",
        [
            (citation_all_words, 24, 0.5),
            (citation_all_3grams, 127, 0.5),
            (address_all_3grams, 47, 0.5),
            (address_name_3grams, 16, 0.5),
        ],
    )
    def test_average_set_size_in_paper_ballpark(self, builder, paper_avg, tolerance):
        data = builder(400, seed=1)
        average = data.average_set_size()
        assert paper_avg * (1 - tolerance) <= average <= paper_avg * (1 + tolerance)

    def test_builders_are_deterministic(self):
        a = citation_all_words(100, seed=9)
        b = citation_all_words(100, seed=9)
        assert a.records == b.records

    def test_name_3grams_smaller_than_all_3grams(self):
        names = address_name_3grams(200, seed=2)
        full = address_all_3grams(200, seed=2)
        assert names.average_set_size() < full.average_set_size()
