"""Unit tests for the Jaccard predicate (§5.2.1)."""

import math

import pytest

from repro import Dataset, JaccardPredicate


@pytest.fixture
def data():
    return Dataset([(0, 1, 2, 3), (1, 2, 3, 4), (0, 9), (5,)])


class TestJaccardThreshold:
    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            JaccardPredicate(0.0)
        with pytest.raises(ValueError):
            JaccardPredicate(1.5)
        JaccardPredicate(1.0)  # boundary allowed

    def test_threshold_formula(self, data):
        bound = JaccardPredicate(0.5).bind(data)
        # T(r, s) = f (|r| + |s|) / (1 + f)
        assert bound.threshold(4.0, 4.0) == pytest.approx(0.5 * 8 / 1.5)

    def test_threshold_is_tight(self, data):
        """Overlap >= T(r, s) iff Jaccard >= f (the rewrite is exact)."""
        f = 0.6
        bound = JaccardPredicate(f).bind(data)
        for size_r in range(1, 8):
            for size_s in range(1, 8):
                for overlap in range(0, min(size_r, size_s) + 1):
                    union = size_r + size_s - overlap
                    jaccard = overlap / union
                    passes_threshold = overlap >= bound.threshold(size_r, size_s) - 1e-9
                    assert passes_threshold == (jaccard >= f - 1e-9), (
                        size_r, size_s, overlap
                    )

    def test_monotone_in_norms(self, data):
        bound = JaccardPredicate(0.7).bind(data)
        assert bound.threshold(3, 5) <= bound.threshold(3, 6)
        assert bound.threshold(3, 5) <= bound.threshold(4, 5)


class TestJaccardVerify(object):
    def test_verify_and_similarity(self, data):
        bound = JaccardPredicate(0.5).bind(data)
        ok, similarity = bound.verify(0, 1)
        assert ok
        assert similarity == pytest.approx(3 / 5)

    def test_verify_rejects_below_fraction(self, data):
        bound = JaccardPredicate(0.7).bind(data)
        ok, _sim = bound.verify(0, 1)
        assert not ok

    def test_identical_records_similarity_one(self):
        data = Dataset([(1, 2), (1, 2)])
        bound = JaccardPredicate(1.0).bind(data)
        ok, similarity = bound.verify(0, 1)
        assert ok and similarity == pytest.approx(1.0)


class TestJaccardFilter:
    def test_band_filter_radius(self, data):
        bound = JaccardPredicate(0.5).bind(data)
        band = bound.band_filter()
        assert band.radius == pytest.approx(math.log(2.0))

    def test_filter_soundness_on_sizes(self, data):
        """The size-ratio filter never rejects a pair with Jaccard >= f."""
        f = 0.5
        bound = JaccardPredicate(f).bind(data)
        band = bound.band_filter()
        # Pair (0, 1): sizes 4 and 4, ratio 1 >= f -> accepted.
        assert band.accepts(0, 1)
        # Pair (0, 3): sizes 4 and 1, ratio 0.25 < f -> may reject; their
        # jaccard is at most 1/4 < f so rejection is sound.
        assert not band.accepts(0, 3)

    def test_weighted_variant_uses_weights(self):
        data = Dataset([(0, 1), (0, 2)])
        bound = JaccardPredicate(0.5, weights={0: 9.0, 1: 1.0, 2: 1.0}).bind(data)
        # weighted overlap = 9, union = 10+10-9 = 11
        ok, similarity = bound.verify(0, 1)
        assert ok
        assert similarity == pytest.approx(9 / 11)
