"""Unit tests for the score-accumulator merge backend."""

import pytest

from repro.core.accumulator import (
    AUTO_MIN_ENTRIES,
    ScoreAccumulator,
    accumulate_merge,
    accumulate_merge_opt,
    resolve_merge_backend,
    use_accumulator,
)
from repro.core.heap_merge import heap_merge
from repro.core.inverted_index import PostingList
from repro.core.merge_opt import merge_opt
from repro.utils.counters import CostCounters


def make_list(entries):
    plist = PostingList()
    for entity_id, score in entries:
        plist.append(entity_id, score)
    return plist


class TestScoreAccumulator:
    def test_capacity_and_growth(self):
        acc = ScoreAccumulator(4)
        assert acc.capacity == 4
        acc.ensure(10)
        assert acc.capacity == 10
        acc.ensure(3)  # never shrinks
        assert acc.capacity == 10

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ScoreAccumulator(-1)

    def test_begin_bumps_epoch(self):
        acc = ScoreAccumulator(2)
        assert acc.begin() == 1
        assert acc.begin() == 2

    def test_stale_slots_are_invisible_across_probes(self):
        acc = ScoreAccumulator(8)
        lists = [(make_list([(3, 1.0), (5, 1.0)]), 1.0)]
        first = accumulate_merge(lists, lambda _s: 1.0, CostCounters(), acc=acc)
        assert first == [(3, 1.0), (5, 1.0)]
        # A second probe touching a different entity must not see the
        # stale weights of 3 and 5 from the previous epoch.
        second = accumulate_merge(
            [(make_list([(3, 1.0)]), 1.0)], lambda _s: 1.0, CostCounters(), acc=acc
        )
        assert second == [(3, 1.0)]


class TestBackendSelection:
    def test_resolve(self):
        assert resolve_merge_backend(None) == "auto"
        assert resolve_merge_backend("heap") == "heap"
        assert resolve_merge_backend("accumulator") == "accumulator"
        with pytest.raises(ValueError):
            resolve_merge_backend("quantum")

    def test_use_accumulator_forced_modes(self):
        lists = [(make_list([(0, 1.0)]), 1.0)]
        assert not use_accumulator("heap", lists)
        assert use_accumulator("accumulator", lists)

    def test_auto_switches_on_total_entries(self):
        small = [(make_list([(i, 1.0) for i in range(AUTO_MIN_ENTRIES - 1)]), 1.0)]
        large = [(make_list([(i, 1.0) for i in range(AUTO_MIN_ENTRIES)]), 1.0)]
        assert not use_accumulator("auto", small)
        assert use_accumulator("auto", large)


class TestAccumulateMerge:
    def test_matches_heap_merge(self):
        lists = [
            (make_list([(0, 1.0), (2, 1.5)]), 2.0),
            (make_list([(0, 1.0), (1, 1.0)]), 1.0),
            (make_list([(0, 1.0), (2, 0.5)]), 1.0),
        ]
        threshold_of = lambda _s: 2.0  # noqa: E731
        expected = heap_merge(lists, threshold_of, CostCounters())
        for acc in (None, ScoreAccumulator(8)):
            got = accumulate_merge(lists, threshold_of, CostCounters(), acc=acc)
            assert got == expected

    def test_empty_lists(self):
        assert accumulate_merge([], lambda _s: 1.0, CostCounters()) == []

    def test_accept_filter(self):
        lists = [(make_list([(0, 1.0), (1, 1.0), (2, 1.0)]), 1.0)]
        got = accumulate_merge(
            lists, lambda _s: 1.0, CostCounters(), accept=lambda e: e != 1
        )
        assert got == [(0, 1.0), (2, 1.0)]

    def test_dense_and_sparse_agree(self):
        lists = [
            (make_list([(1, 0.7), (4, 1.3)]), 1.1),
            (make_list([(1, 0.5), (6, 2.0)]), 0.9),
        ]
        threshold_of = lambda _s: 1.0  # noqa: E731
        dense = accumulate_merge(
            lists, threshold_of, CostCounters(), acc=ScoreAccumulator(7)
        )
        sparse = accumulate_merge(lists, threshold_of, CostCounters(), acc=None)
        assert dense == sparse

    def test_ids_beyond_capacity_fall_back_to_sparse(self):
        # Capacity 3 cannot hold entity 5; the scan must fall back, not
        # raise or (worse) alias a wrong slot.
        acc = ScoreAccumulator(3)
        lists = [(make_list([(0, 1.0), (5, 1.0)]), 1.0)]
        got = accumulate_merge(lists, lambda _s: 1.0, CostCounters(), acc=acc)
        assert got == [(0, 1.0), (5, 1.0)]

    def test_counters_mirror_heap_semantics(self):
        lists = [
            (make_list([(0, 1.0), (2, 1.0)]), 1.0),
            (make_list([(0, 1.0), (1, 1.0)]), 1.0),
        ]
        heap_counters = CostCounters()
        heap_merge(lists, lambda _s: 2.0, heap_counters)
        acc_counters = CostCounters()
        accumulate_merge(
            lists, lambda _s: 2.0, acc_counters, acc=ScoreAccumulator(3)
        )
        assert acc_counters.list_items_touched == heap_counters.list_items_touched
        assert acc_counters.candidates_checked == heap_counters.candidates_checked
        assert acc_counters.heap_pops == 0
        assert acc_counters.heap_pushes == 0
        assert acc_counters.accum_scans == 4
        assert acc_counters.accum_writes == 3
        # The new counters are observability-only: excluded from the
        # comparable work metric.
        assert acc_counters.total_work() <= heap_counters.total_work()


class TestAccumulateMergeOpt:
    def test_matches_merge_opt_with_large_lists(self):
        # One long list (skipped from the merge) plus short ones.
        long_list = make_list([(i, 1.0) for i in range(20)])
        lists = [
            (long_list, 1.0),
            (make_list([(3, 1.0), (7, 1.0)]), 1.0),
            (make_list([(3, 1.0), (9, 1.0)]), 1.0),
        ]
        threshold_of = lambda _s: 2.0  # noqa: E731
        expected = merge_opt(lists, 2.0, threshold_of, CostCounters())
        for acc in (None, ScoreAccumulator(32)):
            got = accumulate_merge_opt(
                lists, 2.0, threshold_of, CostCounters(), acc=acc
            )
            assert got == expected

    def test_all_large_returns_empty(self):
        lists = [(make_list([(i, 1.0) for i in range(10)]), 1.0)]
        counters = CostCounters()
        # index_threshold above the single list's max contribution means
        # every list is "large": entities seen only there cannot qualify.
        got = accumulate_merge_opt(lists, 5.0, lambda _s: 5.0, counters)
        assert got == []

    def test_gallop_steps_counted(self):
        long_list = make_list([(i, 1.0) for i in range(64)])
        lists = [
            (long_list, 1.0),
            (make_list([(60, 1.0)]), 1.0),
        ]
        counters = CostCounters()
        got = accumulate_merge_opt(
            lists, 2.0, lambda _s: 2.0, counters, acc=ScoreAccumulator(64)
        )
        assert got == [(60, 2.0)]
        assert counters.binary_searches == 1
        assert counters.gallop_steps > 0
