"""Unit tests for the benchmark-series reporting module."""

from repro.reporting import parse_series, render_bars, render_report

SAMPLE = """\
=== fig1 demo ===
  algo-a n=100                       n=100  seconds=0.500  pairs=3
  algo-b n=100                       n=100  seconds=1.000  pairs=3
  algo-c n=100                       seconds=DNF  note=overflow

=== stats only ===
  corpus x                           elements=42
"""


class TestParseSeries:
    def test_groups_by_experiment(self):
        experiments = parse_series(SAMPLE)
        assert list(experiments) == ["fig1 demo", "stats only"]
        assert len(experiments["fig1 demo"]) == 3

    def test_labels_and_values(self):
        experiments = parse_series(SAMPLE)
        label, columns = experiments["fig1 demo"][0]
        assert label == "algo-a n=100".split("=")[0].split()[0] + " n=100" or label
        assert columns["seconds"] == 0.5
        assert columns["pairs"] == 3

    def test_non_numeric_values_kept(self):
        experiments = parse_series(SAMPLE)
        _label, columns = experiments["fig1 demo"][2]
        assert columns["seconds"] == "DNF"

    def test_empty_text(self):
        assert parse_series("") == {}


class TestRenderBars:
    def test_bars_scale_to_max(self):
        experiments = parse_series(SAMPLE)
        lines = render_bars(experiments["fig1 demo"], metric="seconds", width=10)
        # 0.5 of max 1.0 -> 5 hashes; 1.0 -> 10 hashes.
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_dnf_row_has_no_bar(self):
        experiments = parse_series(SAMPLE)
        lines = render_bars(experiments["fig1 demo"], metric="seconds")
        assert "(no bar)" in lines[2]

    def test_missing_metric(self):
        lines = render_bars([("x", {"other": 1})], metric="seconds")
        assert "(no bar)" in lines[0]


class TestRenderReport:
    def test_contains_all_experiments(self):
        report = render_report(SAMPLE)
        assert "fig1 demo" in report
        assert "stats only" in report

    def test_fallback_metric(self):
        report = render_report(SAMPLE)
        assert "falling back to metric 'elements'" in report

    def test_roundtrip_with_real_conftest_format(self):
        # Build a payload exactly the way benchmarks/conftest.py does.
        rows = [("series-x", {"seconds": 1.25, "work": 100})]
        text = "=== exp ===\n" + "\n".join(
            f"  {label:34s} " + "  ".join(f"{k}={v}" for k, v in cols.items())
            for label, cols in rows
        )
        experiments = parse_series(text)
        assert experiments["exp"][0][1] == {"seconds": 1.25, "work": 100}
