"""Unit tests for MinHash signatures and group compaction."""

import random

import pytest

from repro.mining.minhash import MinHasher, compact_groups


class TestMinHasher:
    def test_k_validation(self):
        with pytest.raises(ValueError):
            MinHasher(k=0)

    def test_signature_deterministic_per_seed(self):
        a = MinHasher(k=8, seed=1).signature([1, 2, 3])
        b = MinHasher(k=8, seed=1).signature([1, 2, 3])
        assert a == b

    def test_different_seeds_differ(self):
        a = MinHasher(k=8, seed=1).signature([1, 2, 3])
        b = MinHasher(k=8, seed=2).signature([1, 2, 3])
        assert a != b

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            MinHasher(k=4).signature([])

    def test_identical_sets_identical_signature(self):
        hasher = MinHasher(k=16, seed=3)
        assert hasher.signature([5, 9, 11]) == hasher.signature([11, 9, 5])

    def test_resemblance_estimate_extremes(self):
        hasher = MinHasher(k=16, seed=4)
        sig = hasher.signature([1, 2, 3])
        assert hasher.estimate_resemblance(sig, sig) == 1.0

    def test_resemblance_estimate_length_mismatch(self):
        hasher = MinHasher(k=4)
        with pytest.raises(ValueError):
            hasher.estimate_resemblance((1, 2), (1, 2, 3))

    def test_estimate_tracks_true_jaccard(self):
        """Statistical sanity: estimates correlate with true resemblance."""
        rng = random.Random(6)
        hasher = MinHasher(k=128, seed=7)
        for _ in range(10):
            a = set(rng.sample(range(200), 50))
            b = set(rng.sample(range(200), 50))
            true = len(a & b) / len(a | b)
            estimate = hasher.estimate_resemblance(
                hasher.signature(sorted(a)), hasher.signature(sorted(b))
            )
            assert abs(true - estimate) < 0.2


class TestCompactGroups:
    def test_p_validation(self):
        with pytest.raises(ValueError):
            compact_groups([[1]], p=0.0)

    def test_identical_groups_merge(self):
        groups = [[1, 2, 3], [1, 2, 3], [9, 10, 11]]
        clusters = compact_groups(groups, k=16, p=0.9)
        merged = {tuple(c) for c in clusters}
        assert (0, 1) in merged
        assert (2,) in merged

    def test_disjoint_groups_stay_separate(self):
        groups = [[1, 2], [10, 20], [30, 40]]
        clusters = compact_groups(groups, k=16, p=0.9)
        assert sorted(clusters) == [[0], [1], [2]]

    def test_partition_property(self):
        rng = random.Random(8)
        groups = [sorted(rng.sample(range(50), rng.randint(2, 10))) for _ in range(12)]
        clusters = compact_groups(groups, k=8, p=0.5)
        flattened = sorted(i for cluster in clusters for i in cluster)
        assert flattened == list(range(len(groups)))

    def test_deterministic(self):
        groups = [[1, 2, 3], [1, 2, 4], [7, 8]]
        assert compact_groups(groups, seed=5) == compact_groups(groups, seed=5)
