"""JoinContext: deadlines, cancellation, memory budgets, degradation.

The satellite requirement "deadline/cancel tests for every algorithm in
ALGORITHMS" lives here: every registered algorithm (plus cluster-mem)
must observe the context at record granularity.
"""

import pytest

from repro import (
    ALGORITHMS,
    CancellationToken,
    JoinCancelled,
    JoinContext,
    JoinTimeout,
    MemoryBudget,
    MemoryBudgetExceeded,
    OverlapPredicate,
    make_algorithm,
    similarity_join,
)
from repro.runtime.faults import CountdownCancellation, FakeClock
from tests.conftest import random_dataset

ALL_ALGORITHMS = sorted(ALGORITHMS) + ["cluster-mem"]


def _make(name):
    if name == "cluster-mem":
        return make_algorithm(name, budget=MemoryBudget(64))
    return make_algorithm(name)


class TestCancellationToken:
    def test_starts_active(self):
        token = CancellationToken()
        assert not token.cancelled

    def test_cancel_latches_with_reason(self):
        token = CancellationToken()
        token.cancel("operator said so")
        assert token.cancelled
        assert token.reason == "operator said so"
        assert "operator said so" in repr(token)

    def test_countdown_trips_at_exact_check(self):
        token = CountdownCancellation(after_checks=3)
        assert not token.cancelled
        assert not token.cancelled
        assert token.cancelled  # third observation
        assert token.cancelled  # stays cancelled


class TestContextValidation:
    def test_rejects_nonpositive_deadline(self):
        with pytest.raises(ValueError):
            JoinContext(deadline_seconds=0)

    def test_rejects_empty_budget(self):
        with pytest.raises(ValueError):
            JoinContext(memory_budget_entries=0)

    def test_rejects_unknown_memory_policy(self):
        with pytest.raises(ValueError):
            JoinContext(memory_budget_entries=10, on_memory_exceeded="explode")


class TestCancelEveryAlgorithm:
    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_precancelled_token_stops_join(self, name):
        data = random_dataset(seed=31, n_base=25)
        token = CancellationToken()
        token.cancel("test kill")
        context = JoinContext(cancel_token=token)
        with pytest.raises(JoinCancelled, match="test kill"):
            _make(name).join(data, OverlapPredicate(3), context=context)

    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_mid_run_cancel_stops_join(self, name):
        data = random_dataset(seed=32, n_base=25)
        context = JoinContext(cancel_token=CountdownCancellation(after_checks=10))
        with pytest.raises(JoinCancelled):
            _make(name).join(data, OverlapPredicate(3), context=context)


class TestDeadlineEveryAlgorithm:
    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_fake_clock_deadline_expires(self, name):
        data = random_dataset(seed=33, n_base=25)
        # Every clock read advances 1s; the deadline anchors at join
        # start, so the 5th record-granularity check must time out.
        clock = FakeClock(auto_advance=1.0)
        context = JoinContext(deadline_seconds=5.0, clock=clock)
        with pytest.raises(JoinTimeout) as err:
            _make(name).join(data, OverlapPredicate(3), context=context)
        assert err.value.elapsed >= err.value.deadline == 5.0

    def test_generous_deadline_does_not_fire(self):
        data = random_dataset(seed=34, n_base=20)
        context = JoinContext(deadline_seconds=3600.0)
        result = similarity_join(data, OverlapPredicate(3), context=context)
        truth = similarity_join(data, OverlapPredicate(3), algorithm="naive")
        assert result.pair_set() == truth.pair_set()
        assert result.counters.records_scanned > 0


class TestMemoryBudget:
    def test_strict_mode_raises(self):
        data = random_dataset(seed=35, n_base=30)
        context = JoinContext(memory_budget_entries=20, on_memory_exceeded="raise")
        with pytest.raises(MemoryBudgetExceeded) as err:
            similarity_join(
                data, OverlapPredicate(3), algorithm="probe-count", context=context
            )
        assert err.value.entries > err.value.budget == 20

    @pytest.mark.parametrize(
        "name", ["probe-count", "probe-count-online", "probe-cluster", "pair-count"]
    )
    def test_degrades_to_cluster_mem_and_stays_exact(self, name):
        data = random_dataset(seed=36, n_base=30)
        predicate = OverlapPredicate(3)
        truth = similarity_join(data, predicate, algorithm="naive")
        context = JoinContext(memory_budget_entries=20)
        result = similarity_join(data, predicate, algorithm=name, context=context)
        assert result.degraded
        assert result.degraded_from == _make(name).name
        assert "budget" in result.degradation_reason
        assert result.algorithm == _make(name).name  # requested name kept
        assert result.pair_set() == truth.pair_set()
        assert result.counters.extra.get("degradations") == 1

    def test_cluster_mem_is_exempt_from_the_runtime_check(self):
        # ClusterMem honours the budget structurally; its cumulative
        # insert counters must not trip the runtime check.
        data = random_dataset(seed=37, n_base=30)
        predicate = OverlapPredicate(3)
        truth = similarity_join(data, predicate, algorithm="naive")
        context = JoinContext(memory_budget_entries=20, on_memory_exceeded="raise")
        algorithm = _make("cluster-mem")
        result = algorithm.join(data, predicate, context=context)
        assert not result.degraded
        assert result.pair_set() == truth.pair_set()

    def test_large_budget_never_trips(self):
        data = random_dataset(seed=38, n_base=20)
        context = JoinContext(memory_budget_entries=10**9)
        result = similarity_join(data, OverlapPredicate(3), context=context)
        assert not result.degraded


class TestContextAccounting:
    def test_records_scanned_counted(self):
        data = random_dataset(seed=39, n_base=20)
        context = JoinContext()
        result = similarity_join(
            data, OverlapPredicate(3), algorithm="probe-cluster", context=context
        )
        assert result.counters.records_scanned == len(data)

    def test_elapsed_and_remaining(self):
        clock = FakeClock()
        context = JoinContext(deadline_seconds=10.0, clock=clock)
        assert context.elapsed() == 0.0
        context.start()
        clock.advance(4.0)
        assert context.elapsed() == pytest.approx(4.0)
        assert context.remaining() == pytest.approx(6.0)

    def test_join_between_observes_context(self):
        from repro import Dataset

        left = Dataset([(1, 2, 3), (4, 5, 6)])
        right = Dataset([(1, 2, 3), (7, 8, 9)])
        token = CancellationToken()
        token.cancel()
        context = JoinContext(cancel_token=token)
        with pytest.raises(JoinCancelled):
            _make("probe-count").join_between(
                left, right, OverlapPredicate(3), context=context
            )
