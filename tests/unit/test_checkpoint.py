"""JoinCheckpointer: persistence, cadence, and invocation matching."""

import os

import pytest

from repro import Dataset, MatchPair
from repro.runtime.checkpoint import (
    CHECKPOINT_FILENAME,
    JoinCheckpointer,
    dataset_fingerprint,
)
from repro.runtime.errors import CheckpointMismatch, SnapshotCorrupted
from repro.utils.counters import CostCounters

IDENTITY = dict(
    algorithm="probe-count",
    predicate="Overlap(T=3)",
    fingerprint="abc123",
    n_records=50,
)


def _write(ckpt, position=9, pairs=(), **overrides):
    counters = CostCounters()
    counters.records_scanned = position + 1
    ckpt.write(
        **{**IDENTITY, **overrides},
        position=position,
        pairs=list(pairs),
        counters=counters,
    )


class TestPersistence:
    def test_load_missing_returns_none(self, tmp_path):
        assert JoinCheckpointer(str(tmp_path)).load() is None

    def test_write_load_round_trip(self, tmp_path):
        ckpt = JoinCheckpointer(str(tmp_path))
        pairs = [MatchPair(0, 3, 5.0), MatchPair(1, 7, 4.0)]
        _write(ckpt, position=9, pairs=pairs)
        state = ckpt.load()
        assert state.algorithm == "probe-count"
        assert state.predicate == "Overlap(T=3)"
        assert state.position == 9
        assert state.match_pairs() == pairs
        assert state.cost_counters().records_scanned == 10
        assert ckpt.writes == 1

    def test_counters_round_trip_extra_keys(self, tmp_path):
        ckpt = JoinCheckpointer(str(tmp_path))
        counters = CostCounters()
        counters.extra["degradations"] = 1
        ckpt.write(**IDENTITY, position=0, pairs=[], counters=counters)
        assert ckpt.load().cost_counters().extra["degradations"] == 1

    def test_clear_removes_file(self, tmp_path):
        ckpt = JoinCheckpointer(str(tmp_path))
        _write(ckpt)
        assert os.path.exists(ckpt.path)
        ckpt.clear()
        assert not os.path.exists(ckpt.path)
        assert ckpt.load() is None
        ckpt.clear()  # idempotent

    def test_creates_directory(self, tmp_path):
        nested = str(tmp_path / "a" / "b")
        ckpt = JoinCheckpointer(nested)
        assert os.path.isdir(nested)
        assert ckpt.path == os.path.join(nested, CHECKPOINT_FILENAME)

    def test_corrupt_checkpoint_raises(self, tmp_path):
        ckpt = JoinCheckpointer(str(tmp_path))
        _write(ckpt)
        with open(ckpt.path, "r+") as handle:
            raw = handle.read()
            handle.seek(0)
            handle.write(raw.replace("probe-count", "probe-couNt", 1))
        with pytest.raises(SnapshotCorrupted):
            ckpt.load()

    def test_rejects_bad_interval(self, tmp_path):
        with pytest.raises(ValueError):
            JoinCheckpointer(str(tmp_path), interval_records=0)


class TestCadence:
    def test_due_every_interval(self, tmp_path):
        ckpt = JoinCheckpointer(str(tmp_path), interval_records=5)
        due = [position for position in range(20) if ckpt.due(position)]
        assert due == [4, 9, 14, 19]

    def test_interval_one_is_every_record(self, tmp_path):
        ckpt = JoinCheckpointer(str(tmp_path), interval_records=1)
        assert all(ckpt.due(position) for position in range(5))


class TestValidate:
    def _state(self, tmp_path, **overrides):
        ckpt = JoinCheckpointer(str(tmp_path))
        _write(ckpt, **overrides)
        return ckpt.load()

    def test_matching_identity_passes(self, tmp_path):
        JoinCheckpointer.validate(self._state(tmp_path), **IDENTITY)

    @pytest.mark.parametrize(
        "field,changed",
        [
            ("algorithm", "naive"),
            ("predicate", "Jaccard(0.5)"),
            ("fingerprint", "zzz999"),
            ("n_records", 51),
        ],
    )
    def test_any_identity_drift_is_refused(self, tmp_path, field, changed):
        state = self._state(tmp_path)
        with pytest.raises(CheckpointMismatch):
            JoinCheckpointer.validate(state, **{**IDENTITY, field: changed})


class TestFingerprint:
    def test_depends_on_content_not_identity(self):
        a = Dataset([(1, 2, 3), (4, 5)])
        b = Dataset([(1, 2, 3), (4, 5)])
        c = Dataset([(1, 2, 3), (4, 6)])
        assert dataset_fingerprint(a) == dataset_fingerprint(b)
        assert dataset_fingerprint(a) != dataset_fingerprint(c)

    def test_sensitive_to_record_order(self):
        a = Dataset([(1, 2), (3, 4)])
        b = Dataset([(3, 4), (1, 2)])
        assert dataset_fingerprint(a) != dataset_fingerprint(b)
