"""Unit tests for the word-merged index join (§4.1 discarded option)."""

import pytest

from repro import Dataset, JaccardPredicate, NaiveJoin, OverlapPredicate, WeightedOverlapPredicate
from repro.core.word_merge import WordMergedIndexJoin, merge_words
from tests.conftest import random_dataset


class TestMergeWords:
    def test_every_token_mapped(self):
        data = random_dataset(seed=50, n_base=30)
        mapping = merge_words(data)
        assert set(mapping) == set(data.frequency)

    def test_identical_rid_lists_merge(self):
        # Tokens 0 and 1 appear in exactly the same records.
        data = Dataset([(0, 1, 2), (0, 1, 3), (0, 1), (4,)])
        mapping = merge_words(data, p=0.9)
        assert mapping[0] == mapping[1]
        assert mapping[0] != mapping[4]

    def test_deterministic(self):
        data = random_dataset(seed=51, n_base=20)
        assert merge_words(data, seed=3) == merge_words(data, seed=3)


class TestWordMergedIndexJoin:
    @pytest.mark.parametrize("seed", [1, 5, 9])
    def test_overlap_equivalence_with_naive(self, seed):
        data = random_dataset(seed=seed)
        predicate = OverlapPredicate(4)
        truth = NaiveJoin().join(data, predicate).pair_set()
        got = WordMergedIndexJoin().join(data, predicate).pair_set()
        assert got == truth

    def test_jaccard_equivalence(self):
        data = random_dataset(seed=52)
        predicate = JaccardPredicate(0.6)
        truth = NaiveJoin().join(data, predicate).pair_set()
        got = WordMergedIndexJoin().join(data, predicate).pair_set()
        assert got == truth

    def test_rejects_weighted_predicates(self):
        data = random_dataset(seed=53)
        with pytest.raises(ValueError):
            WordMergedIndexJoin().join(data, WeightedOverlapPredicate(3.0))

    def test_reports_compression(self):
        data = random_dataset(seed=54)
        result = WordMergedIndexJoin().join(data, OverlapPredicate(4))
        assert result.counters.extra["superwords"] <= result.counters.extra["words"]

    def test_aggressive_merging_still_exact(self):
        """Low p merges unrelated words -> more candidates, same pairs."""
        data = random_dataset(seed=55)
        predicate = OverlapPredicate(4)
        truth = NaiveJoin().join(data, predicate).pair_set()
        sloppy = WordMergedIndexJoin(minhash_p=0.3).join(data, predicate)
        assert sloppy.pair_set() == truth
