"""Unit tests for Levenshtein distance (full and banded)."""

import pytest

from repro.text.editdist import banded_edit_distance, edit_distance, edit_distance_within


class TestEditDistance:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("a", "", 1),
            ("", "abc", 3),
            ("abc", "abc", 0),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("saturday", "sunday", 3),
            ("ab", "ba", 2),
            ("intention", "execution", 5),
        ],
    )
    def test_known_distances(self, a, b, expected):
        assert edit_distance(a, b) == expected

    def test_symmetry(self):
        assert edit_distance("abcde", "xbcdz") == edit_distance("xbcdz", "abcde")

    def test_triangle_inequality_spot(self):
        a, b, c = "data", "date", "gate"
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)


class TestBandedEditDistance:
    @pytest.mark.parametrize(
        "a,b,k",
        [
            ("kitten", "sitting", 3),
            ("kitten", "sitting", 4),
            ("abc", "abc", 0),
            ("", "ab", 2),
            ("abcd", "abcd", 1),
        ],
    )
    def test_within_band_exact(self, a, b, k):
        assert banded_edit_distance(a, b, k) == edit_distance(a, b)

    def test_exceeding_band_reports_over_k(self):
        assert banded_edit_distance("kitten", "sitting", 2) > 2

    def test_length_gap_short_circuit(self):
        assert banded_edit_distance("a", "abcdef", 2) == 3

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            banded_edit_distance("a", "b", -1)

    def test_k_zero_equal_strings(self):
        assert banded_edit_distance("same", "same", 0) == 0

    def test_k_zero_different_strings(self):
        assert banded_edit_distance("same", "sane", 0) == 1

    def test_agrees_with_full_dp_on_random_pairs(self):
        import random

        rng = random.Random(5)
        for _ in range(200):
            a = "".join(rng.choice("abc") for _ in range(rng.randint(0, 10)))
            b = "".join(rng.choice("abc") for _ in range(rng.randint(0, 10)))
            k = rng.randint(0, 4)
            full = edit_distance(a, b)
            banded = banded_edit_distance(a, b, k)
            if full <= k:
                assert banded == full
            else:
                assert banded > k


class TestEditDistanceWithin:
    def test_true_case(self):
        assert edit_distance_within("databse", "database", 1)

    def test_false_case(self):
        assert not edit_distance_within("data", "warehouse", 3)
