"""Unit tests for Pair-Count (§2.2, §3.1)."""

import pytest

from repro import Dataset, NaiveJoin, OverlapPredicate, PairCountJoin, PairTableOverflow
from tests.conftest import random_dataset


class TestPairCount:
    def test_basic_result(self, small_dataset):
        result = PairCountJoin(optimized=False).join(small_dataset, OverlapPredicate(5))
        assert result.pair_set() == {(0, 1)}

    def test_optimized_result(self, small_dataset):
        result = PairCountJoin(optimized=True).join(small_dataset, OverlapPredicate(5))
        assert result.pair_set() == {(0, 1)}

    def test_names(self):
        assert PairCountJoin(optimized=False).name == "pair-count"
        assert PairCountJoin(optimized=True).name == "pair-count-optmerge"

    @pytest.mark.parametrize("optimized", [False, True])
    @pytest.mark.parametrize("seed", [1, 4, 8])
    def test_equivalence_with_naive(self, optimized, seed):
        data = random_dataset(seed=seed)
        predicate = OverlapPredicate(4)
        truth = NaiveJoin().join(data, predicate).pair_set()
        got = PairCountJoin(optimized=optimized).join(data, predicate).pair_set()
        assert got == truth

    def test_peak_pair_table_recorded(self):
        data = random_dataset(seed=2, n_base=40)
        result = PairCountJoin(optimized=False).join(data, OverlapPredicate(3))
        assert result.counters.peak_pair_table > 0
        assert result.counters.pairs_generated >= result.counters.peak_pair_table

    def test_optimized_generates_fewer_pairs(self):
        data = random_dataset(seed=3, n_base=120, universe=30)
        plain = PairCountJoin(optimized=False).join(data, OverlapPredicate(5))
        opt = PairCountJoin(optimized=True).join(data, OverlapPredicate(5))
        assert opt.pair_set() == plain.pair_set()
        assert opt.counters.pairs_generated < plain.counters.pairs_generated
        assert opt.counters.peak_pair_table < plain.counters.peak_pair_table
        assert opt.counters.extra["skipped_lists"] > 0

    def test_pair_limit_overflow(self):
        data = random_dataset(seed=3, n_base=120, universe=30)
        with pytest.raises(PairTableOverflow) as excinfo:
            PairCountJoin(optimized=False, pair_limit=50).join(data, OverlapPredicate(5))
        assert excinfo.value.limit == 50
        assert excinfo.value.n_pairs > 50

    def test_pair_limit_not_hit_when_table_small(self):
        data = Dataset([(0, 1), (0, 2), (3, 4)])
        result = PairCountJoin(optimized=False, pair_limit=100).join(
            data, OverlapPredicate(1)
        )
        assert result.pair_set() == {(0, 1)}

    def test_empty_dataset(self):
        result = PairCountJoin().join(Dataset([]), OverlapPredicate(1))
        assert result.pairs == []
