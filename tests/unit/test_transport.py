"""ShardServer + RemoteShardClient: one shard across a real socket.

Every test runs a genuine TCP loopback server — no mocked sockets —
because the contract under test is precisely the cross-process one:
typed errors for every failure mode (connect refused, deadline expiry,
corrupt frames), pair-exact answers, generation stamps that move with
the remote index, and reconnect/retry accounting the sharded tier's
health report surfaces.
"""

import itertools
import socket
import threading

import pytest

from repro.core.service import SimilarityIndex
from repro.predicates import JaccardPredicate
from repro.runtime.context import JoinContext
from repro.runtime.errors import (
    FrameChecksumError,
    JoinInterrupted,
    JoinTimeout,
    RidDesync,
    ShardUnavailable,
    WireProtocolError,
)
from repro.runtime.faults import NetworkFaults
from repro.serving import RetryPolicy
from repro.serving.transport import RemoteShardClient, ShardServer, parse_endpoint
from repro.serving.transport import wire
from repro.text.tokenizers import tokenize_words

WAIT = 30.0

CORPUS = [
    "alpha beta gamma delta",
    "alpha beta gamma epsilon",
    "delta epsilon zeta eta",
    "alpha zeta eta theta",
    "beta gamma delta epsilon",
]


def _index(texts=CORPUS) -> SimilarityIndex:
    index = SimilarityIndex(JaccardPredicate(0.3), tokenizer=tokenize_words)
    for text in texts:
        index.add(text)
    return index


def _fingerprint(matches):
    return [(m.rid_a, m.rid_b, m.similarity) for m in matches]


class TestRoundTrips:
    def test_query_matches_local_index_exactly(self):
        index = _index()
        with ShardServer(_index()) as node:
            client = RemoteShardClient(*node.address)
            try:
                for probe in CORPUS + ["beta gamma delta", "nothing here"]:
                    assert _fingerprint(client.query(probe)) == _fingerprint(
                        index.query(probe)
                    )
            finally:
                client.close()

    def test_query_batch(self):
        index = _index()
        with ShardServer(_index()) as node:
            with RemoteShardClient(*node.address) as client:
                remote = client.query_batch(CORPUS)
                local = index.query_batch(CORPUS)
                assert [_fingerprint(m) for m in remote] == [
                    _fingerprint(m) for m in local
                ]

    def test_add_returns_node_local_rid_and_serves_it(self):
        with ShardServer(_index([])) as node:
            with RemoteShardClient(*node.address) as client:
                assert client.add("alpha beta gamma") == 0
                assert client.add("alpha beta delta") == 1
                assert len(client) == 2
                matches = client.query("alpha beta gamma")
                assert [m.rid_a for m in matches] == [0, 1]

    def test_health_reports_node_state(self):
        with ShardServer(_index()) as node:
            with RemoteShardClient(*node.address) as client:
                client.query("alpha beta")
                health = client.health()
                assert health["records"] == len(CORPUS)
                assert health["epoch"] == 0
                assert health["requests"]["query"] == 1
                assert health["errors"] == 0
                assert health["uptime"] >= 0

    def test_ping_and_generation_stamp_track_the_node(self):
        with ShardServer(_index()) as node:
            with RemoteShardClient(*node.address) as client:
                assert client.generation == (0, 0)  # nothing seen yet
                epoch, generation = client.ping()
                assert epoch == 0
                assert client.generation == (0, generation)
                before = client.generation
                client.add("fresh record tokens")
                # The very response that staled the stamp refreshed it.
                assert client.generation != before

    def test_remote_reindex_flips_the_node_epoch(self):
        with ShardServer(_index()) as node:
            with RemoteShardClient(*node.address) as client:
                baseline = _fingerprint(client.query("alpha beta gamma"))
                report = client.reindex(timeout=WAIT)
                assert report["flipped"] is True
                assert node.epoch == 1
                assert client.generation[0] == 1
                # Answers are identical across the flip.
                assert _fingerprint(client.query("alpha beta gamma")) == baseline


class TestIdempotentAdd:
    def test_expected_rid_verifies_the_insert(self):
        with ShardServer(_index([])) as node:
            with RemoteShardClient(*node.address) as client:
                assert client.add("alpha beta", expected_rid=0) == 0
                assert client.add("beta gamma", expected_rid=1) == 1
                assert len(client) == 2

    def test_lost_response_retry_dedupes_instead_of_double_inserting(self):
        """The high-severity review case: the node commits the insert,
        the response dies on the wire, the retry must not insert again
        (or the node's rids desync from the front end's global map)."""
        with ShardServer(_index([])) as node:
            with NetworkFaults(*node.address) as proxy:
                proxy.kill(times=1)  # response starts, then the peer dies
                client = RemoteShardClient(
                    "127.0.0.1",
                    proxy.port,
                    retry_policy=RetryPolicy(
                        max_attempts=3, base_delay=0.01, sleep=lambda s: None
                    ),
                )
                try:
                    assert client.add("alpha beta gamma", expected_rid=0) == 0
                    assert client.retries == 1
                    # Two ADD ops served, exactly one record committed.
                    assert node.requests["add"] == 2
                    assert len(node.index) == 1
                    # The rid sequence continues unbroken.
                    assert client.add("beta gamma delta", expected_rid=1) == 1
                    assert len(node.index) == 2
                finally:
                    client.close()

    def test_insert_expecting_the_wrong_rid_is_a_typed_desync(self):
        with ShardServer(_index([])) as node:
            with RemoteShardClient(*node.address) as client:
                with pytest.raises(RidDesync):
                    client.add("alpha beta", expected_rid=3)
                assert len(node.index) == 0  # refused, not inserted

    def test_unmapped_committed_record_refuses_the_next_insert(self):
        """A record the front end never mapped (its rollback raced a
        commit, or a rogue writer) must fail the next verified insert
        loudly — deduping it would silently serve the wrong record."""
        with ShardServer(_index([])) as node:
            with RemoteShardClient(*node.address) as rogue:
                rogue.add("stray unmapped record")  # plain, unverified
            client = RemoteShardClient(
                *node.address,
                retry_policy=RetryPolicy(
                    max_attempts=3, base_delay=0.01, sleep=lambda s: None
                ),
            )
            try:
                with pytest.raises(RidDesync):
                    client.add("alpha beta", expected_rid=0)
                assert client.retries == 0  # desync is not retryable
                assert len(node.index) == 1  # nothing double-inserted
            finally:
                client.close()


class TestFailureTyping:
    def test_connect_refused_is_shard_unavailable(self):
        # Bind-then-close guarantees an unused port.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = RemoteShardClient("127.0.0.1", port, connect_timeout=0.5)
        with pytest.raises(ShardUnavailable) as info:
            client.ping()
        assert isinstance(info.value, ConnectionError)  # retryable class

    def test_expired_deadline_is_a_typed_timeout(self):
        with ShardServer(_index()) as node:
            with RemoteShardClient(*node.address) as client:
                context = JoinContext(deadline_seconds=1e-9)
                context.start()
                while context.remaining() > 0:
                    pass
                with pytest.raises(JoinTimeout):
                    client.query("alpha beta", context=context)

    def test_slow_trip_with_deadline_budget_left_is_retryable(self):
        """A round trip bounded by request_timeout while the deadline
        still has plenty of budget is a transient shard fault, not
        deadline expiry — reporting JoinTimeout would (wrongly) skip
        the remaining retry budget."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)  # accepts at TCP level, never answers
        try:
            client = RemoteShardClient(
                "127.0.0.1",
                listener.getsockname()[1],
                request_timeout=0.2,
            )
            context = JoinContext(deadline_seconds=60.0)
            context.start()
            with pytest.raises(ShardUnavailable) as info:
                client.query("alpha beta", context=context)
            assert not isinstance(info.value, JoinInterrupted)
            assert context.remaining() > 0
            client.close()
        finally:
            listener.close()

    def test_unframeable_request_error_frame_is_retryable(self):
        """The node's best-effort answer for a request it could not
        frame (request_id 0, FLAG_ERROR) must surface as a retryable
        transport fault, not a permanent protocol mismatch."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)

        def unframeable_node():
            conn, _peer = listener.accept()
            conn.recv(65536)
            conn.sendall(
                wire.encode_frame(
                    wire.OP_PING,
                    wire.encode_error(FrameChecksumError(1, 2)),
                    flags=wire.FLAG_RESPONSE | wire.FLAG_ERROR,
                )
            )
            conn.close()

        threading.Thread(target=unframeable_node, daemon=True).start()
        try:
            client = RemoteShardClient("127.0.0.1", listener.getsockname()[1])
            with pytest.raises(ShardUnavailable) as info:
                client.query("alpha beta")
            assert isinstance(info.value, ConnectionError)  # retryable
            assert "FrameChecksumError" in str(info.value)
            client.close()
        finally:
            listener.close()

    def test_request_ids_survive_u32_wraparound(self):
        with ShardServer(_index()) as node:
            with RemoteShardClient(*node.address) as client:
                # Fast-forward the counter to the wire-width boundary:
                # ids must stay within u32 (so the echo compares equal)
                # and skip 0 (reserved for unrequested error frames).
                client._request_ids = itertools.count(0xFFFFFFFF)
                for _ in range(3):  # 0xFFFFFFFF, then wraps to 1, 2
                    client.ping()
                assert node.requests["ping"] == 3

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_interrupt_in_a_handler_drops_the_connection(self):
        """KeyboardInterrupt raised inside an op handler must not be
        smuggled to the client as a typed wire error on a live stream."""
        index = _index()
        with ShardServer(index) as node:
            def interrupted_query(*args, **kwargs):
                raise KeyboardInterrupt

            index.query = interrupted_query
            with RemoteShardClient(*node.address) as client:
                with pytest.raises(ShardUnavailable):
                    client.query("alpha beta")
                # The node itself keeps serving fresh connections.
                assert client.ping()[0] == 0

    def test_closed_client_refuses_new_calls(self):
        with ShardServer(_index()) as node:
            client = RemoteShardClient(*node.address)
            client.ping()
            client.close()
            client.close()  # idempotent
            with pytest.raises(ShardUnavailable, match="closed"):
                client.ping()

    def test_payload_is_not_served_over_the_wire(self):
        with ShardServer(_index()) as node:
            with RemoteShardClient(*node.address) as client:
                with pytest.raises(NotImplementedError):
                    client.payload(0)

    def test_server_survives_a_garbage_speaking_peer(self):
        """A peer that isn't speaking the protocol gets dropped; real
        clients keep being served and the error is tallied."""
        with ShardServer(_index()) as node:
            raw = socket.create_connection(node.address, timeout=5.0)
            # Longer than a frame header, so the node sees a full (bad)
            # header instead of waiting for more bytes.
            raw.sendall(b"GET / HTTP/1.1\r\nHost: not-a-shard-client\r\n\r\n")
            # The node answers with a best-effort typed error frame,
            # then hangs up.
            frame = wire.read_frame(wire.socket_reader(raw))
            assert frame.is_error
            assert raw.recv(1) == b""  # connection dropped
            raw.close()
            with RemoteShardClient(*node.address) as client:
                assert client.ping()[0] == 0
            assert node.errors >= 1


class TestFaultRecovery:
    def test_corrupt_frame_retried_to_success_on_fresh_connection(self):
        with ShardServer(_index()) as node:
            with NetworkFaults(*node.address) as proxy:
                proxy.corrupt(times=1)
                client = RemoteShardClient(
                    "127.0.0.1",
                    proxy.port,
                    retry_policy=RetryPolicy(
                        max_attempts=3, base_delay=0.01, sleep=lambda s: None
                    ),
                )
                try:
                    matches = client.query("alpha beta gamma delta")
                    assert _fingerprint(matches) == _fingerprint(
                        _index().query("alpha beta gamma delta")
                    )
                    assert client.retries == 1
                    assert client.reconnects == 1
                    assert proxy.injected["corrupt"] == 1
                finally:
                    client.close()

    def test_corrupt_frame_without_retries_is_typed(self):
        with ShardServer(_index()) as node:
            with NetworkFaults(*node.address) as proxy:
                proxy.corrupt(times=1)
                with RemoteShardClient("127.0.0.1", proxy.port) as client:
                    with pytest.raises(FrameChecksumError):
                        client.query("alpha beta")

    def test_killed_connection_is_retried_on_a_fresh_one(self):
        with ShardServer(_index()) as node:
            with NetworkFaults(*node.address) as proxy:
                proxy.kill(times=1)
                client = RemoteShardClient(
                    "127.0.0.1",
                    proxy.port,
                    retry_policy=RetryPolicy(
                        max_attempts=3, base_delay=0.01, sleep=lambda s: None
                    ),
                )
                try:
                    assert client.ping()[0] == 0
                    assert client.reconnects == 1
                finally:
                    client.close()

    def test_pool_reuses_a_healthy_connection(self):
        with ShardServer(_index()) as node:
            with RemoteShardClient(*node.address, pool_size=1) as client:
                for _ in range(5):
                    client.ping()
                assert client.reconnects == 0
                assert node.requests["ping"] == 5


class TestServerLifecycle:
    def test_stop_is_idempotent(self):
        node = ShardServer(_index()).start()
        node.stop()
        node.stop()

    def test_concurrent_clients(self):
        index = _index()
        errors = []
        with ShardServer(_index()) as node:
            def worker():
                try:
                    with RemoteShardClient(*node.address) as client:
                        for probe in CORPUS:
                            assert _fingerprint(client.query(probe)) == _fingerprint(
                                index.query(probe)
                            )
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [threading.Thread(target=worker) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(WAIT)
        assert errors == []


class TestEndpointParsing:
    @pytest.mark.parametrize(
        "spec, expected",
        [
            ("127.0.0.1:7601", ("127.0.0.1", 7601)),
            ("shard-node-3:80", ("shard-node-3", 80)),
            ("::1:9000", ("::1", 9000)),
        ],
    )
    def test_valid(self, spec, expected):
        assert parse_endpoint(spec) == expected

    @pytest.mark.parametrize(
        "spec", ["no-port", ":7601", "host:", "host:notanint", "host:0", "host:70000"]
    )
    def test_invalid(self, spec):
        with pytest.raises(ValueError):
            parse_endpoint(spec)
