"""Unit tests for the Word-Groups join (§2.3)."""

import pytest

from repro import (
    CosinePredicate,
    Dataset,
    JaccardPredicate,
    NaiveJoin,
    OverlapPredicate,
    WordGroupsJoin,
)
from tests.conftest import random_dataset


class TestWordGroups:
    def test_basic_result(self, small_dataset):
        result = WordGroupsJoin().join(small_dataset, OverlapPredicate(5))
        assert result.pair_set() == {(0, 1)}

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            WordGroupsJoin(early_output_support=1)

    def test_rejects_record_dependent_scores(self, small_dataset):
        with pytest.raises(ValueError):
            WordGroupsJoin().join(small_dataset, CosinePredicate(0.5))

    @pytest.mark.parametrize("optimized", [False, True])
    @pytest.mark.parametrize("compaction", [False, True])
    @pytest.mark.parametrize("seed", [1, 5])
    def test_equivalence_with_naive(self, optimized, compaction, seed):
        data = random_dataset(seed=seed, n_base=50)
        predicate = OverlapPredicate(4)
        truth = NaiveJoin().join(data, predicate).pair_set()
        algorithm = WordGroupsJoin(optimized=optimized, compaction=compaction)
        assert algorithm.join(data, predicate).pair_set() == truth

    def test_jaccard_equivalence(self):
        data = random_dataset(seed=6, n_base=50)
        predicate = JaccardPredicate(0.6)
        truth = NaiveJoin().join(data, predicate).pair_set()
        assert WordGroupsJoin().join(data, predicate).pair_set() == truth

    def test_high_overlap_pairs_found_once(self):
        # A pair sharing 2T words appears in C(2T, T) groups; the output
        # must still be a single pair.
        data = Dataset([tuple(range(10)), tuple(range(10)), (99,)])
        result = WordGroupsJoin(early_output_support=2).join(data, OverlapPredicate(5))
        assert result.pair_set() == {(0, 1)}

    def test_early_output_reduces_itemsets(self):
        data = random_dataset(seed=4, n_base=60)
        eager = WordGroupsJoin(early_output_support=8, compaction=False).join(
            data, OverlapPredicate(4)
        )
        lazy = WordGroupsJoin(early_output_support=2, compaction=False).join(
            data, OverlapPredicate(4)
        )
        assert eager.pair_set() == lazy.pair_set()
        assert eager.counters.itemsets_generated <= lazy.counters.itemsets_generated

    def test_optimized_skips_large_word_groups(self):
        data = random_dataset(seed=7, n_base=80, universe=25)
        plain = WordGroupsJoin(optimized=False, compaction=False).join(
            data, OverlapPredicate(5)
        )
        opt = WordGroupsJoin(optimized=True, compaction=False).join(
            data, OverlapPredicate(5)
        )
        assert opt.pair_set() == plain.pair_set()
        assert opt.counters.extra["large_words"] > 0

    def test_mixed_large_small_groups_not_lost(self):
        """Regression: groups mixing large-list and other words must be
        reachable even though all-large groups are skipped.

        Tokens 0 and 1 are the most frequent (land in L); the qualifying
        pair shares {0, 1, 2} and only reaches T = 3 with all three.
        """
        filler = [(0,), (1,), (0, 1)] * 6
        data = Dataset([(0, 1, 2), (0, 1, 2)] + filler)
        predicate = OverlapPredicate(3)
        truth = NaiveJoin().join(data, predicate).pair_set()
        got = WordGroupsJoin(optimized=True, compaction=False).join(data, predicate)
        assert got.pair_set() == truth
        assert (0, 1) in got.pair_set()

    def test_max_level_flush_is_exact(self):
        data = random_dataset(seed=8, n_base=40)
        predicate = OverlapPredicate(4)
        truth = NaiveJoin().join(data, predicate).pair_set()
        capped = WordGroupsJoin(max_level=2).join(data, predicate)
        assert capped.pair_set() == truth

    def test_empty_dataset(self):
        result = WordGroupsJoin().join(Dataset([]), OverlapPredicate(1))
        assert result.pairs == []
