"""Unit tests for the disk record store."""

import pytest

from repro.storage.record_store import DiskRecordStore


class TestDiskRecordStore:
    RECORDS = [(1, 2, 3), (), (42,), (7, 8)]

    def test_roundtrip(self, tmp_path):
        store = DiskRecordStore.from_records(self.RECORDS, str(tmp_path / "r.dat"))
        for rid, record in enumerate(self.RECORDS):
            assert store.fetch(rid) == record
        store.close()

    def test_random_access_order(self, tmp_path):
        store = DiskRecordStore.from_records(self.RECORDS, str(tmp_path / "r.dat"))
        assert store.fetch(2) == (42,)
        assert store.fetch(0) == (1, 2, 3)
        assert store.fetch(3) == (7, 8)
        store.close()

    def test_fetch_counter(self, tmp_path):
        store = DiskRecordStore.from_records(self.RECORDS, str(tmp_path / "r.dat"))
        store.fetch(0)
        store.fetch(1)
        assert store.fetches == 2
        store.close()

    def test_out_of_range(self, tmp_path):
        store = DiskRecordStore.from_records(self.RECORDS, str(tmp_path / "r.dat"))
        with pytest.raises(IndexError):
            store.fetch(99)
        with pytest.raises(IndexError):
            store.fetch(-1)
        store.close()

    def test_fetch_after_close_rejected(self, tmp_path):
        store = DiskRecordStore.from_records(self.RECORDS, str(tmp_path / "r.dat"))
        store.close()
        with pytest.raises(ValueError):
            store.fetch(0)

    def test_unlink_removes_file(self, tmp_path):
        path = tmp_path / "r.dat"
        store = DiskRecordStore.from_records(self.RECORDS, str(path))
        store.unlink()
        assert not path.exists()

    def test_len(self, tmp_path):
        store = DiskRecordStore.from_records(self.RECORDS, str(tmp_path / "r.dat"))
        assert len(store) == 4
        store.close()

    def test_context_manager(self, tmp_path):
        with DiskRecordStore.from_records(self.RECORDS, str(tmp_path / "r.dat")) as store:
            assert store.fetch(0) == (1, 2, 3)
        with pytest.raises(ValueError):
            store.fetch(0)
