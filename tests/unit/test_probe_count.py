"""Unit tests for the Probe-Count family."""

import pytest

from repro import Dataset, JaccardPredicate, NaiveJoin, OverlapPredicate, ProbeCountJoin
from tests.conftest import random_dataset


class TestVariants:
    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            ProbeCountJoin(variant="nope")

    def test_names(self):
        assert ProbeCountJoin(variant="basic").name == "probe-count-basic"
        assert ProbeCountJoin(variant="sort").name == "probe-count-sort"


class TestBasics:
    @pytest.fixture
    def data(self, small_dataset):
        return small_dataset

    @pytest.mark.parametrize("variant", ["basic", "stopwords", "optmerge", "online", "sort"])
    def test_finds_expected_pairs(self, data, variant):
        result = ProbeCountJoin(variant=variant).join(data, OverlapPredicate(5))
        assert result.pair_set() == {(0, 1)}

    @pytest.mark.parametrize("variant", ["basic", "stopwords", "optmerge", "online", "sort"])
    def test_lower_threshold_more_pairs(self, data, variant):
        result = ProbeCountJoin(variant=variant).join(data, OverlapPredicate(3))
        assert result.pair_set() == {(0, 1), (2, 3)}

    def test_pairs_canonical_and_unique(self, data):
        result = ProbeCountJoin(variant="basic").join(data, OverlapPredicate(3))
        pairs = result.pair_set()
        assert len(pairs) == len(result.pairs)
        for rid_a, rid_b in pairs:
            assert rid_a < rid_b

    def test_empty_dataset(self):
        result = ProbeCountJoin().join(Dataset([]), OverlapPredicate(1))
        assert result.pairs == []

    def test_single_record(self):
        result = ProbeCountJoin().join(Dataset([(1, 2, 3)]), OverlapPredicate(1))
        assert result.pairs == []

    def test_identical_records(self):
        data = Dataset([(1, 2, 3)] * 4)
        result = ProbeCountJoin(variant="online").join(data, OverlapPredicate(3))
        assert len(result.pairs) == 6  # all C(4,2) pairs

    def test_no_self_pairs(self, data):
        result = ProbeCountJoin(variant="basic").join(data, OverlapPredicate(1))
        for pair in result.pairs:
            assert pair.rid_a != pair.rid_b


def _heap_backed(variant: str) -> ProbeCountJoin:
    """A variant pinned to the heap merge backend, so the heap counters
    these work-savings tests compare are populated regardless of the
    adaptive default."""
    algorithm = ProbeCountJoin(variant=variant)
    algorithm.merge_backend = "heap"
    return algorithm


class TestWorkSavings:
    def test_optmerge_does_less_merge_work_than_basic(self):
        data = random_dataset(seed=5, n_base=150, universe=40)
        basic = _heap_backed("basic").join(data, OverlapPredicate(6))
        opt = _heap_backed("optmerge").join(data, OverlapPredicate(6))
        assert opt.pair_set() == basic.pair_set()
        assert opt.counters.heap_pops < basic.counters.heap_pops

    def test_online_halves_merge_work(self):
        data = random_dataset(seed=6, n_base=150, universe=40)
        two_pass = _heap_backed("optmerge").join(data, OverlapPredicate(6))
        online = _heap_backed("online").join(data, OverlapPredicate(6))
        assert online.pair_set() == two_pass.pair_set()
        assert online.counters.heap_pops < two_pass.counters.heap_pops

    def test_stopwords_counter_reports_removed_words(self):
        data = random_dataset(seed=7, n_base=100, universe=30)
        result = ProbeCountJoin(variant="stopwords").join(data, OverlapPredicate(5))
        assert result.counters.extra["stopwords"] == 4  # T - 1 for unit weights


class TestAgainstNaive:
    @pytest.mark.parametrize("variant", ["basic", "stopwords", "optmerge", "online", "sort"])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_overlap_equivalence(self, variant, seed):
        data = random_dataset(seed=seed)
        predicate = OverlapPredicate(4)
        truth = NaiveJoin().join(data, predicate).pair_set()
        got = ProbeCountJoin(variant=variant).join(data, predicate).pair_set()
        assert got == truth

    @pytest.mark.parametrize("variant", ["basic", "optmerge", "online", "sort"])
    def test_jaccard_equivalence(self, variant):
        data = random_dataset(seed=9)
        predicate = JaccardPredicate(0.6)
        truth = NaiveJoin().join(data, predicate).pair_set()
        got = ProbeCountJoin(variant=variant).join(data, predicate).pair_set()
        assert got == truth
