"""ShardedIndexServer: routing, exactness, fault domains, accounting."""

import threading

import pytest

from repro import OverlapPredicate
from repro.core.results import MatchPair
from repro.core.service import SimilarityIndex
from repro.runtime.errors import (
    PartialResult,
    RidDesync,
    ServerOverloaded,
    ShardUnavailable,
)
from repro.runtime.faults import ShardFaults
from repro.serving import (
    CircuitBreaker,
    HedgePolicy,
    RetryPolicy,
    ShardedIndexServer,
    ShardedResult,
)
from repro.serving.transport import RemoteShardClient, ShardServer
from repro.text.tokenizers import tokenize_words

WAIT = 10.0

TEXTS = [
    "efficient set joins on similarity predicates",
    "set joins with similarity predicates made efficient",
    "completely different words entirely",
    "probe count optimized merge joins",
    "efficient merge joins on sorted postings",
    "similarity predicates over set valued attributes",
    "inverted index probe count optimization",
    "set similarity search with inverted indexes",
]

PROBE = "efficient set joins similarity"


def _server(shards=3, texts=TEXTS, **kwargs) -> ShardedIndexServer:
    kwargs.setdefault("workers", 2)
    server = ShardedIndexServer(
        OverlapPredicate(2),
        shards=shards,
        tokenizer=tokenize_words,
        **kwargs,
    )
    for text in texts:
        server.add(text)
    return server.start()


def _single(texts=TEXTS) -> SimilarityIndex:
    index = SimilarityIndex(OverlapPredicate(2), tokenizer=tokenize_words)
    for text in texts:
        index.add(text)
    return index


def _fingerprint(matches) -> list:
    return [(m.rid_a, m.rid_b, round(m.similarity, 12)) for m in matches]


class TestRoutingAndExactness:
    def test_records_land_on_their_routed_shard(self):
        server = _server()
        try:
            spread = server.health()["router"]["spread"]
            assert sum(spread) == len(TEXTS)
            for rid in range(len(TEXTS)):
                sid = server.router.shard_of(rid)
                shard = server._shards[sid]
                assert rid in shard.global_rids
        finally:
            server.drain(timeout=WAIT)

    def test_result_identical_to_single_index(self):
        server = _server()
        single = _single()
        try:
            for probe in [PROBE, *TEXTS, "no such tokens anywhere"]:
                assert _fingerprint(server.query(probe, timeout=WAIT)) == (
                    _fingerprint(single.query(probe))
                )
        finally:
            server.drain(timeout=WAIT)

    def test_payload_roundtrip_and_len(self):
        server = ShardedIndexServer(
            OverlapPredicate(2), shards=3, tokenizer=tokenize_words
        )
        rids = [server.add(text, payload=f"p{i}") for i, text in enumerate(TEXTS)]
        assert rids == list(range(len(TEXTS)))
        assert len(server) == len(TEXTS)
        assert [server.payload(rid) for rid in rids] == [
            f"p{i}" for i in range(len(TEXTS))
        ]

    def test_more_shards_than_records_still_exact(self):
        server = _server(shards=7, texts=TEXTS[:3])
        single = _single(texts=TEXTS[:3])
        try:
            result = server.query(PROBE, timeout=WAIT)
            assert not result.partial
            assert _fingerprint(result) == _fingerprint(single.query(PROBE))
        finally:
            server.drain(timeout=WAIT)

    def test_extend_matches_serial_adds(self):
        server = ShardedIndexServer(
            OverlapPredicate(2), shards=2, tokenizer=tokenize_words
        )
        assert server.extend(TEXTS[:4]) == [0, 1, 2, 3]
        assert len(server) == 4


class TestShardedResult:
    def test_behaves_like_a_match_list(self):
        server = _server()
        try:
            result = server.query(PROBE, timeout=WAIT)
            assert isinstance(result, ShardedResult)
            assert len(result) == len(list(result))
            assert result[0] == list(result)[0]
            assert result.shards_ok == (0, 1, 2)
            assert result.shards_failed == ()
            assert result.partial is False
            # rid_b is the probe's ephemeral rid, as the single server
            # reports it; rid_a ascends.
            assert all(m.rid_b == len(TEXTS) for m in result)
            rids = [m.rid_a for m in result]
            assert rids == sorted(rids)
        finally:
            server.drain(timeout=WAIT)


class TestPartialResults:
    def test_killed_shard_yields_partial_with_exact_accounting(self):
        faults = ShardFaults()
        server = _server(faults=faults)
        try:
            faults.kill(1)
            result = server.query(PROBE, timeout=WAIT)
            assert result.partial is True
            assert result.shards_failed == (1,)
            assert result.shards_ok == (0, 2)
            # Survivors' matches are exact: every record routed to the
            # lost shard is absent, everything else matches the single
            # index bit for bit.
            lost = set(server._shards[1].global_rids)
            expected = [
                entry
                for entry in _fingerprint(_single().query(PROBE))
                if entry[0] not in lost
            ]
            assert _fingerprint(result) == expected
            health = server.health()
            assert health["partial"] == {"complete": 0, "partial": 1}
            assert health["shards"][1]["failures"] == 1
            faults.clear()
            follow_up = server.query(PROBE, timeout=WAIT)
            assert follow_up.partial is False
            assert server.health()["partial"] == {"complete": 1, "partial": 1}
        finally:
            server.drain(timeout=WAIT)

    def test_require_complete_raises_typed_partial_result(self):
        faults = ShardFaults()
        server = _server(faults=faults)
        try:
            faults.kill(2)
            with pytest.raises(PartialResult) as err:
                server.query(PROBE, timeout=WAIT, require_complete=True)
            assert err.value.shards_failed == (2,)
            assert err.value.shards_total == 3
            # The partial answer rides along for callers that change
            # their mind at the failure site.
            assert err.value.result.partial is True
            assert server.health()["failed"] == 1
        finally:
            server.drain(timeout=WAIT)

    def test_require_complete_passes_complete_results_through(self):
        server = _server()
        try:
            result = server.query(PROBE, timeout=WAIT, require_complete=True)
            assert result.partial is False
        finally:
            server.drain(timeout=WAIT)

    def test_all_shards_lost_is_an_empty_partial(self):
        faults = ShardFaults()
        server = _server(faults=faults)
        try:
            for sid in range(3):
                faults.kill(sid)
            result = server.query(PROBE, timeout=WAIT)
            assert result.partial is True
            assert result.shards_failed == (0, 1, 2)
            assert len(result) == 0
        finally:
            server.drain(timeout=WAIT)


class TestFaultDomains:
    def test_breaker_trips_only_on_the_sick_shard(self):
        faults = ShardFaults()
        server = _server(
            faults=faults,
            breaker_factory=lambda: CircuitBreaker(
                failure_threshold=2, cooldown_seconds=60.0
            ),
        )
        try:
            faults.kill(1)
            for _ in range(3):
                server.query(PROBE, timeout=WAIT)
            states = [row["breaker"]["state"] for row in server.health()["shards"]]
            assert states == ["closed", "open", "closed"]
            # The open breaker fails the shard fast — still partial,
            # still exact on the survivors, even with the fault cleared.
            faults.clear()
            result = server.query(PROBE, timeout=WAIT)
            assert result.shards_failed == (1,)
        finally:
            server.drain(timeout=WAIT)

    def test_retry_policy_absorbs_transient_shard_faults(self):
        faults = ShardFaults()
        server = _server(
            faults=faults,
            retry_policy=RetryPolicy(max_attempts=3, sleep=lambda s: None),
        )
        try:
            faults.kill(0, times=1)
            result = server.query(PROBE, timeout=WAIT)
            assert result.partial is False
            assert server.health()["retried"] >= 1
            assert faults.injected[0] == 1
        finally:
            server.drain(timeout=WAIT)

    def test_slow_shard_past_deadline_is_partial_not_fatal(self):
        faults = ShardFaults()
        server = _server(faults=faults, shard_workers=2)
        try:
            faults.slow(1, 5.0)
            result = server.query(PROBE, deadline=0.2, timeout=WAIT)
            assert result.partial is True
            assert result.shards_failed == (1,)
        finally:
            server.drain(timeout=WAIT)

    def test_per_shard_cache_hits_skip_probes(self):
        server = _server(query_cache=8)
        try:
            server.query(PROBE, timeout=WAIT)
            probes_before = [
                row["probes"] for row in server.health()["shards"]
            ]
            server.query(PROBE, timeout=WAIT)
            health = server.health()
            assert [row["probes"] for row in health["shards"]] == probes_before
            assert all(row["cache"]["hits"] == 1 for row in health["shards"])
        finally:
            server.drain(timeout=WAIT)

    def test_add_invalidates_only_the_owning_shards_cache(self):
        server = _server(query_cache=8)
        try:
            server.query(PROBE, timeout=WAIT)  # warm every shard's cache
            rid = server.add("efficient set joins appended later")
            owner = server.router.shard_of(rid)
            result = server.query(PROBE, timeout=WAIT)
            # Correctness first: the new record is matched immediately.
            assert any(m.rid_a == rid for m in result)
            for row in server.health()["shards"]:
                expected_hits = 0 if row["shard"] == owner else 1
                assert row["cache"]["hits"] == expected_hits
        finally:
            server.drain(timeout=WAIT)


class TestRidDesyncQuarantine:
    """A shard whose local-rid space desyncs from the global map is
    quarantined: loud on the triggering add, exact (partial) on every
    query after, named in health — never wrongly-mapped pairs."""

    def test_desynced_remote_shard_is_quarantined(self):
        node = ShardServer(
            SimilarityIndex(OverlapPredicate(2), tokenizer=tokenize_words)
        ).start()
        try:
            server = ShardedIndexServer(
                OverlapPredicate(2),
                shards=1,
                tokenizer=tokenize_words,
                workers=2,
                shard_endpoints=[f"127.0.0.1:{node.port}"],
            )
            server.add(TEXTS[0])
            # A record lands on the node behind the front end's back:
            # its next rid no longer matches the global map.
            with RemoteShardClient(*node.address) as rogue:
                rogue.add(TEXTS[1])
            with pytest.raises(RidDesync):
                server.add(TEXTS[2])
            server.start()
            try:
                # The shard is lost for every query — with exact
                # accounting, not wrongly-mapped matches.
                result = server.query(PROBE, timeout=WAIT)
                assert result.partial
                assert result.shards_failed == (0,)
                assert result.matches == ()
                with pytest.raises(PartialResult):
                    server.query(PROBE, timeout=WAIT, require_complete=True)
                # Adds refuse too, and health names the reason.
                with pytest.raises(ShardUnavailable, match="quarantined"):
                    server.add(TEXTS[3])
                row = server.health()["shards"][0]
                assert row["quarantined"] is not None
                assert len(server) == 1  # every failed add rolled back
            finally:
                server.drain(timeout=WAIT)
        finally:
            node.stop()

    def test_merge_refuses_unmapped_local_rids(self):
        """Backstop for a probe racing the quarantine moment: a shard
        answering local rids the map never assigned is dropped from the
        answer as failed, never guessed at (the pre-fix behavior was an
        IndexError or a silently wrong global rid)."""
        server = _server(shards=2)
        try:
            shard = server._shards[0]
            stray = [MatchPair(len(shard.global_rids), 0, 1.0)]
            result = server._merge({0: stray, 1: []}, [])
            assert result.partial
            assert result.shards_failed == (0,)
            assert result.shards_ok == (1,)
            assert shard.quarantined is not None
        finally:
            server.drain(timeout=WAIT)


class TestHedging:
    def test_hedge_races_a_straggler_and_wins(self):
        faults = ShardFaults()
        server = _server(
            faults=faults,
            shard_workers=2,
            hedge=HedgePolicy(delay=0.02),
        )
        try:
            faults.slow(2, 5.0, times=1)  # first probe stalls; hedge is clean
            result = server.query(PROBE, timeout=WAIT)
            assert result.partial is False
            health = server.health()
            assert health["hedging"]["enabled"] is True
            assert health["hedging"]["issued"] >= 1
            assert health["hedging"]["wins"] >= 1
            assert health["shards"][2]["hedges"] >= 1
        finally:
            server.drain(timeout=WAIT)

    def test_adaptive_policy_needs_samples_before_hedging(self):
        policy = HedgePolicy(min_samples=4)
        from repro.serving.stats import LatencyTracker

        latency = LatencyTracker(16)
        assert policy.delay_for(latency) is None
        for _ in range(4):
            latency.observe(0.01)
        delay = policy.delay_for(latency)
        assert delay == pytest.approx(max(0.01 * 2.0, 0.001))

    def test_fixed_delay_overrides_adaptive(self):
        from repro.serving.stats import LatencyTracker

        policy = HedgePolicy(delay=0.5)
        assert policy.delay_for(LatencyTracker(4)) == 0.5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"delay": -1.0},
            {"percentile": 0.0},
            {"percentile": 101.0},
            {"multiplier": 0.0},
            {"min_samples": 0},
            {"floor": -0.1},
        ],
    )
    def test_policy_validation(self, kwargs):
        with pytest.raises(ValueError):
            HedgePolicy(**kwargs)


class TestServerLifecycle:
    def test_drain_stops_shard_pools(self):
        server = _server()
        assert server.drain(timeout=WAIT) is True
        for shard in server._shards:
            for thread in shard.pool._threads:
                thread.join(WAIT)
                assert not thread.is_alive()

    def test_double_stop_is_idempotent(self):
        server = _server()
        assert server.stop(timeout=WAIT) is True
        assert server.stop(timeout=WAIT) is True
        for shard in server._shards:
            assert shard.pool._stopped

    def test_stop_after_failed_start_is_noop_and_start_retryable(self):
        class _FlakyStart(ShardedIndexServer):
            fail_next = True

            def _on_start(self):
                if self.fail_next:
                    raise RuntimeError("shard pool refused to spawn")
                super()._on_start()

        server = _FlakyStart(
            OverlapPredicate(2), shards=2, tokenizer=tokenize_words
        )
        for text in TEXTS:
            server.add(text)
        with pytest.raises(RuntimeError, match="refused to spawn"):
            server.start()
        # Nothing was built, so stop has nothing to tear down — and a
        # second stop is equally a no-op.
        assert server.stop(timeout=WAIT) is True
        assert server.stop(timeout=WAIT) is True
        # The fixed configuration starts and serves.
        server.fail_next = False
        server.start()
        try:
            result = server.query(PROBE, timeout=WAIT)
            assert not result.partial
        finally:
            assert server.stop(timeout=WAIT) is True

    def test_overload_sheds_with_typed_error(self):
        gate = threading.Event()
        parked = threading.Semaphore(0)

        def wedge(seconds: float) -> None:
            parked.release()
            assert gate.wait(WAIT)

        faults = ShardFaults(sleep=wedge)
        server = _server(workers=1, queue_limit=1, faults=faults)
        try:
            faults.slow(0, 1.0)
            accepted = [server.submit(PROBE)]
            assert parked.acquire(timeout=WAIT)  # the only worker is wedged
            accepted.append(server.submit(PROBE))  # fills the queue
            with pytest.raises(ServerOverloaded):
                for _ in range(4):
                    accepted.append(server.submit(PROBE))
            gate.set()
            for future in accepted:
                assert future.result(timeout=WAIT).partial is False
            assert server.health()["shed"] >= 1
        finally:
            gate.set()
            server.drain(timeout=WAIT)

    def test_counters_aggregate_across_shards(self):
        server = _server()
        try:
            server.query(PROBE, timeout=WAIT)
            aggregate = server.counters_snapshot()
            by_hand: dict = {}
            for shard in server._shards:
                for name, value in shard.index.counters_snapshot().items():
                    by_hand[name] = by_hand.get(name, 0) + value
            assert aggregate == by_hand
            # One query probes every shard exactly once.
            assert aggregate["probes"] == 3
            assert aggregate["candidates_checked"] > 0
        finally:
            server.drain(timeout=WAIT)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shards": 0},
            {"shard_workers": 0},
            {"query_cache": -1},
        ],
    )
    def test_constructor_validation(self, kwargs):
        with pytest.raises(ValueError):
            ShardedIndexServer(OverlapPredicate(2), **kwargs)

    def test_health_shape(self):
        server = _server(query_cache=4, breaker_factory=CircuitBreaker)
        try:
            server.query(PROBE, timeout=WAIT)
            health = server.health()
            assert health["records"] == len(TEXTS)
            assert health["router"]["shards"] == 3
            assert len(health["shards"]) == 3
            for row in health["shards"]:
                assert set(row) == {
                    "shard", "records", "epoch", "generation", "breaker",
                    "cache", "latency", "probes", "hedges", "hedge_wins",
                    "failures", "remote", "retries", "reconnects",
                    "quarantined",
                }
                assert row["remote"] is False
                assert row["quarantined"] is None
                assert row["retries"] == 0
                assert row["reconnects"] == 0
            assert health["index"]["records"] == len(TEXTS)
        finally:
            server.drain(timeout=WAIT)
