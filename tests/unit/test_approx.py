"""Unit tests for the approximate join mode (:mod:`repro.approx`).

Covers the planner's repetition sizing, the per-predicate Jaccard
floor derivations, seed determinism, the brute-force degenerate case
(one leaf holds everything ⇒ exactly the naive join), the sampled
recall estimator, and the ``mode="approx"`` dispatch contract.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    ApproxJoin,
    CosinePredicate,
    DicePredicate,
    JaccardPredicate,
    OverlapPredicate,
    estimate_recall,
    similarity_join,
)
from repro.approx.floor import (
    DEFAULT_HEURISTIC_FLOOR,
    MAX_FLOOR,
    pair_jaccard_floor,
)
from repro.approx.plan import plan_paths
from repro.core.records import Dataset
from repro.predicates import WeightedOverlapPredicate


def seeded_dataset(seed: int, n: int = 80, vocabulary: int = 40) -> Dataset:
    rng = random.Random(seed)
    records = []
    for _ in range(n):
        size = rng.randint(2, 9)
        records.append(tuple(sorted(rng.sample(range(vocabulary), size))))
    return Dataset(records)


class TestFloor:
    def test_jaccard_floor_is_threshold(self):
        data = seeded_dataset(1)
        bound = JaccardPredicate(0.6).bind(data)
        floor, sound = pair_jaccard_floor(bound, data)
        assert sound
        assert floor == pytest.approx(0.6)

    def test_dice_floor(self):
        # Dice d ⇒ Jaccard >= d / (2 - d), independent of sizes.
        data = seeded_dataset(2)
        bound = DicePredicate(0.5).bind(data)
        floor, sound = pair_jaccard_floor(bound, data)
        assert sound
        assert floor == pytest.approx(0.5 / 1.5)

    def test_overlap_floor_uses_observed_sizes(self):
        data = Dataset([(1, 2, 3, 4), (1, 2, 3, 5), (6, 7, 8, 9)])
        bound = OverlapPredicate(3).bind(data)
        floor, sound = pair_jaccard_floor(bound, data)
        assert sound
        # All records have size 4: J >= 3 / (4 + 4 - 3).
        assert floor == pytest.approx(3 / 5)

    def test_overlap_infeasible_threshold_is_vacuous(self):
        data = Dataset([(1, 2), (1, 3), (2, 3)])
        bound = OverlapPredicate(10).bind(data)
        floor, sound = pair_jaccard_floor(bound, data)
        assert sound
        assert floor == MAX_FLOOR  # no pair can qualify; join is empty

    def test_cosine_declares_f_squared(self):
        data = seeded_dataset(3)
        bound = CosinePredicate(0.8).bind(data)
        floor, sound = pair_jaccard_floor(bound, data)
        assert not sound  # heuristic under TF-IDF weights
        assert floor == pytest.approx(0.64)

    def test_weighted_fallback_heuristic(self):
        data = seeded_dataset(4)
        weights = {token: 1.0 + (token % 3) for token in range(40)}
        bound = WeightedOverlapPredicate(2.0, weights).bind(data)
        floor, sound = pair_jaccard_floor(bound, data)
        assert not sound
        assert floor == pytest.approx(DEFAULT_HEURISTIC_FLOOR)


class TestPlan:
    def _plan(self, target, **kwargs):
        data = seeded_dataset(5)
        bound = JaccardPredicate(0.7).bind(data)
        defaults = dict(
            target_recall=target, leaf_size=4, max_depth=4, max_repetitions=256
        )
        defaults.update(kwargs)
        return plan_paths(bound, data, **defaults)

    def test_repetitions_monotone_in_target(self):
        reps = [self._plan(t).repetitions for t in (0.5, 0.7, 0.9, 0.99)]
        assert reps == sorted(reps)
        assert reps[0] < reps[-1]

    def test_expected_recall_meets_target(self):
        for target in (0.5, 0.9, 0.99):
            plan = self._plan(target)
            assert not plan.recall_capped
            assert plan.expected_recall >= target

    def test_repetition_cap_flags_shortfall(self):
        plan = self._plan(0.999, max_repetitions=2)
        assert plan.recall_capped
        assert plan.repetitions == 2
        assert plan.expected_recall < 0.999

    def test_validation(self):
        with pytest.raises(ValueError):
            self._plan(1.0)
        with pytest.raises(ValueError):
            self._plan(0.0)
        with pytest.raises(ValueError):
            self._plan(0.9, leaf_size=1)
        with pytest.raises(ValueError):
            self._plan(0.9, max_depth=0)

    def test_as_extra_keys(self):
        extra = self._plan(0.9).as_extra()
        assert extra["approx_target_recall"] == 0.9
        assert extra["approx_jaccard_floor"] == pytest.approx(0.7)
        assert extra["approx_floor_sound"] is True
        assert extra["approx_repetitions"] >= 1
        assert extra["approx_recall_capped"] is False


class TestApproxJoin:
    def test_fixed_seed_is_deterministic(self):
        data = seeded_dataset(6)
        predicate = JaccardPredicate(0.5)
        first = ApproxJoin(seed=11).join(data, predicate)
        second = ApproxJoin(seed=11).join(data, predicate)
        assert first.pair_set() == second.pair_set()
        assert {(p.rid_a, p.rid_b): p.similarity for p in first.pairs} == {
            (p.rid_a, p.rid_b): p.similarity for p in second.pairs
        }

    def test_zero_false_positives(self):
        data = seeded_dataset(7)
        predicate = JaccardPredicate(0.5)
        exact = similarity_join(data, predicate, algorithm="naive")
        approx = ApproxJoin(seed=3).join(data, predicate)
        assert approx.pair_set() <= exact.pair_set()
        bound = predicate.bind(data)
        for pair in approx.pairs:
            matches, similarity = bound.verify(pair.rid_a, pair.rid_b)
            assert matches
            assert similarity == pytest.approx(pair.similarity)

    def test_giant_leaf_equals_naive(self):
        # leaf_size >= n: the root never splits, every pair is
        # brute-forced, and the result is exactly the naive join.
        data = seeded_dataset(8, n=40)
        predicate = JaccardPredicate(0.4)
        exact = similarity_join(data, predicate, algorithm="naive")
        approx = ApproxJoin(seed=0, leaf_size=len(data)).join(data, predicate)
        assert approx.pair_set() == exact.pair_set()
        assert approx.extra["recall_estimate"] == pytest.approx(1.0)

    def test_result_extra_annotations(self):
        data = seeded_dataset(9)
        result = ApproxJoin(target_recall=0.9, seed=5).join(
            data, JaccardPredicate(0.6)
        )
        extra = result.extra
        assert extra["approx_seed"] == 5
        assert extra["approx_target_recall"] == 0.9
        assert extra["approx_repetitions"] >= 1
        assert 0.0 <= extra["recall_estimate"] <= 1.0

    def test_recall_sample_zero_disables_estimate(self):
        data = seeded_dataset(10)
        result = ApproxJoin(seed=1, recall_sample=0).join(
            data, JaccardPredicate(0.6)
        )
        assert "recall_estimate" not in result.extra

    def test_tiny_dataset(self):
        result = ApproxJoin(seed=0).join(Dataset([(1, 2)]), JaccardPredicate(0.5))
        assert result.pairs == []


class TestEstimator:
    def test_perfect_pairs_estimate_one(self):
        data = seeded_dataset(11)
        predicate = JaccardPredicate(0.5)
        exact = similarity_join(data, predicate, algorithm="naive")
        stats = estimate_recall(
            data, predicate, exact.pair_set(), sample_size=10, seed=2
        )
        assert stats["recall_estimate"] == pytest.approx(1.0)

    def test_empty_pairs_estimate_zero_when_truth_exists(self):
        data = seeded_dataset(12)
        predicate = JaccardPredicate(0.4)
        exact = similarity_join(data, predicate, algorithm="naive")
        assert exact.pairs  # the corpus must actually have matches
        stats = estimate_recall(data, predicate, set(), sample_size=20, seed=2)
        assert stats["recall_sample_truth"] > 0
        assert stats["recall_estimate"] == pytest.approx(0.0)

    def test_estimator_is_deterministic(self):
        data = seeded_dataset(13)
        predicate = JaccardPredicate(0.5)
        pairs = ApproxJoin(seed=4).join(data, predicate).pair_set()
        first = estimate_recall(data, predicate, pairs, sample_size=8, seed=9)
        second = estimate_recall(data, predicate, pairs, sample_size=8, seed=9)
        assert first == second


class TestModeDispatch:
    def test_mode_approx_runs_approx(self):
        data = seeded_dataset(14)
        result = similarity_join(
            data, JaccardPredicate(0.6), mode="approx", seed=3
        )
        assert result.algorithm == "approx"
        assert result.extra["approx_seed"] == 3

    def test_mode_approx_rejects_other_algorithms(self):
        data = seeded_dataset(15)
        with pytest.raises(ValueError):
            similarity_join(
                data, JaccardPredicate(0.6), mode="approx", algorithm="naive"
            )

    def test_unknown_mode_raises(self):
        data = seeded_dataset(16)
        with pytest.raises(ValueError):
            similarity_join(data, JaccardPredicate(0.6), mode="turbo")

    def test_exact_mode_default_unchanged(self):
        data = seeded_dataset(17)
        result = similarity_join(data, JaccardPredicate(0.6))
        assert result.algorithm == "probe-cluster"
