"""Crash-safe snapshot format: atomicity, checksums, versioning."""

import json
import os

import pytest

from repro.runtime.errors import SnapshotCorrupted, SnapshotEncodingError
from repro.runtime.faults import FailingFilesystem, InjectedFault
from repro.runtime.snapshot import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    read_snapshot,
    write_snapshot,
)

PAYLOAD = {"numbers": [1, 2, 3], "nested": {"a": "x", "b": 2.5}, "flag": True}


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        path = str(tmp_path / "state.snap")
        write_snapshot(path, PAYLOAD, kind="test-state")
        assert read_snapshot(path, kind="test-state") == PAYLOAD

    def test_overwrite_replaces_atomically(self, tmp_path):
        path = str(tmp_path / "state.snap")
        write_snapshot(path, {"v": 1}, kind="test-state")
        write_snapshot(path, {"v": 2}, kind="test-state")
        assert read_snapshot(path, kind="test-state") == {"v": 2}
        assert not os.path.exists(path + ".tmp")

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_snapshot(str(tmp_path / "nope.snap"), kind="test-state")

    def test_non_json_payload_rejected(self, tmp_path):
        with pytest.raises(SnapshotEncodingError):
            write_snapshot(
                str(tmp_path / "bad.snap"), {"obj": object()}, kind="test-state"
            )
        with pytest.raises(SnapshotEncodingError):
            write_snapshot(
                str(tmp_path / "nan.snap"), {"x": float("nan")}, kind="test-state"
            )


class TestCorruptionDetection:
    def _snap(self, tmp_path):
        path = str(tmp_path / "state.snap")
        write_snapshot(path, PAYLOAD, kind="test-state")
        return path

    def test_flipped_payload_byte(self, tmp_path):
        path = self._snap(tmp_path)
        with open(path) as handle:
            raw = handle.read()
        with open(path, "w") as handle:
            handle.write(raw.replace('"numbers"', '"numbersX"', 1))
        with pytest.raises(SnapshotCorrupted, match="checksum"):
            read_snapshot(path, kind="test-state")

    def test_truncated_file(self, tmp_path):
        path = self._snap(tmp_path)
        with open(path) as handle:
            raw = handle.read()
        with open(path, "w") as handle:
            handle.write(raw[: len(raw) // 2])
        with pytest.raises(SnapshotCorrupted, match="JSON"):
            read_snapshot(path, kind="test-state")

    def test_foreign_json_file(self, tmp_path):
        path = str(tmp_path / "foreign.json")
        with open(path, "w") as handle:
            json.dump({"token_lists": [], "payloads": []}, handle)
        with pytest.raises(SnapshotCorrupted, match="magic"):
            read_snapshot(path, kind="test-state")

    def test_wrong_kind(self, tmp_path):
        path = self._snap(tmp_path)
        with pytest.raises(SnapshotCorrupted, match="kind"):
            read_snapshot(path, kind="other-state")

    def test_future_version(self, tmp_path):
        path = str(tmp_path / "future.snap")
        with open(path, "w") as handle:
            json.dump(
                {
                    "magic": SNAPSHOT_MAGIC,
                    "version": SNAPSHOT_VERSION + 1,
                    "kind": "test-state",
                    "checksum": "sha256:0",
                    "payload": {},
                },
                handle,
            )
        with pytest.raises(SnapshotCorrupted, match="version"):
            read_snapshot(path, kind="test-state")

    def test_non_object_envelope(self, tmp_path):
        path = str(tmp_path / "list.snap")
        with open(path, "w") as handle:
            handle.write("[1, 2, 3]")
        with pytest.raises(SnapshotCorrupted, match="object"):
            read_snapshot(path, kind="test-state")


class TestCrashAtomicity:
    """A crash at ANY write step must leave the old snapshot loadable."""

    @pytest.mark.parametrize("operation", ["open", "write", "fsync", "replace"])
    def test_crash_mid_overwrite_preserves_old(self, tmp_path, operation):
        path = str(tmp_path / "state.snap")
        write_snapshot(path, {"generation": 1}, kind="test-state")
        fs = FailingFilesystem(fail_operation=operation)
        with pytest.raises(InjectedFault):
            write_snapshot(path, {"generation": 2}, kind="test-state", fs=fs)
        assert fs.faults_injected == 1
        # The old snapshot is byte-for-byte intact and loads cleanly.
        assert read_snapshot(path, kind="test-state") == {"generation": 1}
        assert not os.path.exists(path + ".tmp")

    def test_crash_on_first_save_leaves_nothing(self, tmp_path):
        path = str(tmp_path / "state.snap")
        fs = FailingFilesystem(fail_operation="fsync")
        with pytest.raises(InjectedFault):
            write_snapshot(path, {"generation": 1}, kind="test-state", fs=fs)
        assert not os.path.exists(path)
        assert not os.path.exists(path + ".tmp")

    def test_second_attempt_succeeds_after_injected_crash(self, tmp_path):
        path = str(tmp_path / "state.snap")
        fs = FailingFilesystem(fail_operation="replace", fail_at_call=1)
        with pytest.raises(InjectedFault):
            write_snapshot(path, {"generation": 1}, kind="test-state", fs=fs)
        write_snapshot(path, {"generation": 2}, kind="test-state", fs=fs)
        assert read_snapshot(path, kind="test-state") == {"generation": 2}
