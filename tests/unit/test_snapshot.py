"""Crash-safe snapshot format: atomicity, checksums, versioning."""

import json
import os

import pytest

from repro.runtime.errors import SnapshotCorrupted, SnapshotEncodingError
from repro.runtime.faults import FailingFilesystem, InjectedFault
from repro.runtime.snapshot import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    RealFilesystem,
    read_snapshot,
    write_snapshot,
)

PAYLOAD = {"numbers": [1, 2, 3], "nested": {"a": "x", "b": 2.5}, "flag": True}


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        path = str(tmp_path / "state.snap")
        write_snapshot(path, PAYLOAD, kind="test-state")
        assert read_snapshot(path, kind="test-state") == PAYLOAD

    def test_overwrite_replaces_atomically(self, tmp_path):
        path = str(tmp_path / "state.snap")
        write_snapshot(path, {"v": 1}, kind="test-state")
        write_snapshot(path, {"v": 2}, kind="test-state")
        assert read_snapshot(path, kind="test-state") == {"v": 2}
        assert not os.path.exists(path + ".tmp")

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_snapshot(str(tmp_path / "nope.snap"), kind="test-state")

    def test_non_json_payload_rejected(self, tmp_path):
        with pytest.raises(SnapshotEncodingError):
            write_snapshot(
                str(tmp_path / "bad.snap"), {"obj": object()}, kind="test-state"
            )
        with pytest.raises(SnapshotEncodingError):
            write_snapshot(
                str(tmp_path / "nan.snap"), {"x": float("nan")}, kind="test-state"
            )


class TestCorruptionDetection:
    def _snap(self, tmp_path):
        path = str(tmp_path / "state.snap")
        write_snapshot(path, PAYLOAD, kind="test-state")
        return path

    def test_flipped_payload_byte(self, tmp_path):
        path = self._snap(tmp_path)
        with open(path) as handle:
            raw = handle.read()
        with open(path, "w") as handle:
            handle.write(raw.replace('"numbers"', '"numbersX"', 1))
        with pytest.raises(SnapshotCorrupted, match="checksum"):
            read_snapshot(path, kind="test-state")

    def test_truncated_file(self, tmp_path):
        path = self._snap(tmp_path)
        with open(path) as handle:
            raw = handle.read()
        with open(path, "w") as handle:
            handle.write(raw[: len(raw) // 2])
        with pytest.raises(SnapshotCorrupted, match="JSON"):
            read_snapshot(path, kind="test-state")

    def test_foreign_json_file(self, tmp_path):
        path = str(tmp_path / "foreign.json")
        with open(path, "w") as handle:
            json.dump({"token_lists": [], "payloads": []}, handle)
        with pytest.raises(SnapshotCorrupted, match="magic"):
            read_snapshot(path, kind="test-state")

    def test_wrong_kind(self, tmp_path):
        path = self._snap(tmp_path)
        with pytest.raises(SnapshotCorrupted, match="kind"):
            read_snapshot(path, kind="other-state")

    def test_future_version(self, tmp_path):
        path = str(tmp_path / "future.snap")
        with open(path, "w") as handle:
            json.dump(
                {
                    "magic": SNAPSHOT_MAGIC,
                    "version": SNAPSHOT_VERSION + 1,
                    "kind": "test-state",
                    "checksum": "sha256:0",
                    "payload": {},
                },
                handle,
            )
        with pytest.raises(SnapshotCorrupted, match="version"):
            read_snapshot(path, kind="test-state")

    def test_non_object_envelope(self, tmp_path):
        path = str(tmp_path / "list.snap")
        with open(path, "w") as handle:
            handle.write("[1, 2, 3]")
        with pytest.raises(SnapshotCorrupted, match="object"):
            read_snapshot(path, kind="test-state")


class TestCrashAtomicity:
    """A crash at ANY write step must leave the old snapshot loadable."""

    @pytest.mark.parametrize("operation", ["open", "write", "fsync", "replace"])
    def test_crash_mid_overwrite_preserves_old(self, tmp_path, operation):
        path = str(tmp_path / "state.snap")
        write_snapshot(path, {"generation": 1}, kind="test-state")
        fs = FailingFilesystem(fail_operation=operation)
        with pytest.raises(InjectedFault):
            write_snapshot(path, {"generation": 2}, kind="test-state", fs=fs)
        assert fs.faults_injected == 1
        # The old snapshot is byte-for-byte intact and loads cleanly.
        assert read_snapshot(path, kind="test-state") == {"generation": 1}
        assert not os.path.exists(path + ".tmp")

    def test_crash_on_first_save_leaves_nothing(self, tmp_path):
        path = str(tmp_path / "state.snap")
        fs = FailingFilesystem(fail_operation="fsync")
        with pytest.raises(InjectedFault):
            write_snapshot(path, {"generation": 1}, kind="test-state", fs=fs)
        assert not os.path.exists(path)
        assert not os.path.exists(path + ".tmp")

    def test_second_attempt_succeeds_after_injected_crash(self, tmp_path):
        path = str(tmp_path / "state.snap")
        fs = FailingFilesystem(fail_operation="replace", fail_at_call=1)
        with pytest.raises(InjectedFault):
            write_snapshot(path, {"generation": 1}, kind="test-state", fs=fs)
        write_snapshot(path, {"generation": 2}, kind="test-state", fs=fs)
        assert read_snapshot(path, kind="test-state") == {"generation": 2}


class _InterruptingFilesystem(RealFilesystem):
    """Raises KeyboardInterrupt at one chosen operation.

    Models an operator's Ctrl-C landing mid-checkpoint-flush — a
    BaseException, which an ``except Exception`` cleanup clause would
    miss entirely.
    """

    def __init__(self, interrupt_at: str):
        self.interrupt_at = interrupt_at

    def _maybe_interrupt(self, operation: str) -> None:
        if operation == self.interrupt_at:
            raise KeyboardInterrupt(f"injected at {operation}")

    def open(self, path: str, mode: str):
        handle = super().open(path, mode)
        if "w" in mode:
            outer = self

            class _Handle:
                def write(self, data):
                    outer._maybe_interrupt("write")
                    return handle.write(data)

                def __getattr__(self, name):
                    return getattr(handle, name)

            return _Handle()
        return handle

    def fsync(self, handle) -> None:
        self._maybe_interrupt("fsync")
        super().fsync(getattr(handle, "_inner", handle))

    def replace(self, src: str, dst: str) -> None:
        self._maybe_interrupt("replace")
        super().replace(src, dst)


class TestTempFileCleanup:
    """Regression: a leaked ``.tmp`` poisons the checkpoint directory.

    The cleanup clause must catch BaseException, not Exception — the
    realistic trigger is KeyboardInterrupt landing mid-write while an
    operator hammers Ctrl-C during a checkpoint flush.
    """

    @pytest.mark.parametrize("operation", ["write", "fsync", "replace"])
    def test_keyboard_interrupt_cleans_temp(self, tmp_path, operation):
        path = str(tmp_path / "state.snap")
        write_snapshot(path, {"generation": 1}, kind="test-state")
        fs = _InterruptingFilesystem(interrupt_at=operation)
        with pytest.raises(KeyboardInterrupt):
            write_snapshot(path, {"generation": 2}, kind="test-state", fs=fs)
        assert not os.path.exists(path + ".tmp")
        assert read_snapshot(path, kind="test-state") == {"generation": 1}

    def test_encoding_failure_never_creates_temp(self, tmp_path):
        # The envelope is encoded before the temp file is opened, so an
        # unencodable payload cannot leave a partial file behind.
        path = str(tmp_path / "state.snap")

        class _CountingFilesystem(RealFilesystem):
            opens = 0

            def open(self, p, mode):
                type(self).opens += 1
                return super().open(p, mode)

        fs = _CountingFilesystem()
        with pytest.raises(SnapshotEncodingError):
            write_snapshot(path, {"obj": object()}, kind="test-state", fs=fs)
        assert fs.opens == 0
        assert not os.path.exists(path + ".tmp")

    def test_cleanup_failure_does_not_mask_original_error(self, tmp_path):
        path = str(tmp_path / "state.snap")

        class _StickyTempFilesystem(FailingFilesystem):
            def remove(self, p: str) -> None:
                raise OSError("injected: temp file is undeletable")

        fs = _StickyTempFilesystem(fail_operation="replace")
        with pytest.raises(InjectedFault):
            write_snapshot(path, {"generation": 1}, kind="test-state", fs=fs)
