"""Unit tests for the cosine/TF-IDF predicate (§5.2.2)."""

import math

import pytest

from repro import CosinePredicate, Dataset
from repro.text.tfidf import CorpusStats


@pytest.fixture
def data():
    return Dataset([(0, 1, 2), (0, 1, 2), (0, 3), (4, 5, 6)])


class TestCosinePredicate:
    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            CosinePredicate(0.0)
        with pytest.raises(ValueError):
            CosinePredicate(1.0001)

    def test_norms_are_one(self, data):
        bound = CosinePredicate(0.5).bind(data)
        for rid in range(len(data)):
            assert bound.norm(rid) == pytest.approx(1.0)

    def test_threshold_is_constant_f(self, data):
        bound = CosinePredicate(0.7).bind(data)
        assert bound.threshold(1.0, 1.0) == 0.7

    def test_identical_records_cosine_one(self, data):
        bound = CosinePredicate(0.9).bind(data)
        ok, similarity = bound.verify(0, 1)
        assert ok
        assert similarity == pytest.approx(1.0)

    def test_disjoint_records_cosine_zero(self, data):
        bound = CosinePredicate(0.1).bind(data)
        ok, similarity = bound.verify(0, 3)
        assert not ok
        assert similarity == pytest.approx(0.0)

    def test_cosine_matches_direct_computation(self, data):
        bound = CosinePredicate(0.1).bind(data)
        stats = CorpusStats(data.records)
        a = stats.normalized_scores(data[0])
        b = stats.normalized_scores(data[2])
        expected = sum(w * b[t] for t, w in a.items() if t in b)
        assert bound.match_weight(0, 2) == pytest.approx(expected)

    def test_external_stats_accepted(self, data):
        stats = CorpusStats([(0,), (0,), (1,)])
        bound = CosinePredicate(0.5, stats=stats).bind(data)
        assert bound.stats is stats

    def test_record_dependent_scores_flag(self, data):
        bound = CosinePredicate(0.5).bind(data)
        assert bound.record_independent_scores is False

    def test_rare_words_dominate(self, data):
        # In record (0, 3): token 0 appears in 3 records, token 3 in one.
        bound = CosinePredicate(0.5).bind(data)
        scores = dict(zip(data[2], bound.score_vector(2)))
        assert scores[3] > scores[0]
