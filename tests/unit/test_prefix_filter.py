"""Unit tests for the prefix-filter join (successor-technique baseline)."""

import pytest

from repro import (
    Dataset,
    DicePredicate,
    JaccardPredicate,
    NaiveJoin,
    OverlapPredicate,
    WeightedOverlapPredicate,
)
from repro.core.prefix_filter import PrefixFilterJoin
from repro.predicates.hamming import HammingPredicate
from tests.conftest import random_dataset


class TestPrefixFilterJoin:
    def test_basic(self, small_dataset):
        result = PrefixFilterJoin().join(small_dataset, OverlapPredicate(5))
        assert result.pair_set() == {(0, 1)}

    @pytest.mark.parametrize("seed", [1, 4, 9])
    @pytest.mark.parametrize("t", [2, 4, 6])
    def test_overlap_equivalence(self, seed, t):
        data = random_dataset(seed=seed)
        predicate = OverlapPredicate(t)
        truth = NaiveJoin().join(data, predicate).pair_set()
        assert PrefixFilterJoin().join(data, predicate).pair_set() == truth

    @pytest.mark.parametrize("f", [0.5, 0.7, 0.9])
    def test_jaccard_equivalence(self, f):
        data = random_dataset(seed=12)
        predicate = JaccardPredicate(f)
        truth = NaiveJoin().join(data, predicate).pair_set()
        assert PrefixFilterJoin().join(data, predicate).pair_set() == truth

    def test_dice_equivalence(self):
        data = random_dataset(seed=13)
        predicate = DicePredicate(0.7)
        truth = NaiveJoin().join(data, predicate).pair_set()
        assert PrefixFilterJoin().join(data, predicate).pair_set() == truth

    def test_hamming_equivalence_small_k(self):
        data = random_dataset(seed=14, min_size=3)
        predicate = HammingPredicate(1)
        truth = NaiveJoin().join(data, predicate).pair_set()
        assert PrefixFilterJoin().join(data, predicate).pair_set() == truth

    def test_rejects_weighted(self):
        with pytest.raises(ValueError):
            PrefixFilterJoin().join(random_dataset(seed=15), WeightedOverlapPredicate(2.0))

    def test_empty_dataset(self):
        assert PrefixFilterJoin().join(Dataset([]), OverlapPredicate(1)).pairs == []

    def test_unmatchable_records_skipped(self):
        # Threshold larger than some record sizes: those records can
        # never match and must not break anything.
        data = Dataset([(0,), (0, 1, 2, 3, 4), (0, 1, 2, 3, 5)])
        result = PrefixFilterJoin().join(data, OverlapPredicate(4))
        assert result.pair_set() == {(1, 2)}

    def test_prefix_index_smaller_than_full(self):
        data = random_dataset(seed=16, n_base=100)
        prefix = PrefixFilterJoin().join(data, OverlapPredicate(6))
        from repro import similarity_join

        full = similarity_join(data, OverlapPredicate(6), algorithm="probe-count-online")
        assert prefix.pair_set() == full.pair_set()
        assert prefix.counters.index_entries < full.counters.index_entries
