"""Unit tests for the posting-compression substrate."""

import random

import pytest

from repro.compression.elias import (
    BitReader,
    BitWriter,
    elias_delta_decode,
    elias_delta_encode,
    elias_gamma_decode,
    elias_gamma_encode,
)
from repro.compression.postings import CompressedPostingList
from repro.compression.varbyte import (
    varbyte_decode,
    varbyte_decode_deltas,
    varbyte_encode,
)


class TestVarbyte:
    def test_roundtrip_small(self):
        values = [0, 1, 127, 128, 129, 16383, 16384, 2**31]
        assert varbyte_decode(varbyte_encode(values)) == values

    def test_empty(self):
        assert varbyte_encode([]) == b""
        assert varbyte_decode(b"") == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            varbyte_encode([-1])

    def test_truncated_stream_rejected(self):
        data = varbyte_encode([300])
        with pytest.raises(ValueError):
            varbyte_decode(data[:-1])

    def test_count_limited_decode(self):
        data = varbyte_encode([5, 6, 7])
        assert varbyte_decode(data, count=2) == [5, 6]

    def test_small_values_one_byte(self):
        assert len(varbyte_encode([0, 1, 100, 127])) == 4

    def test_decode_deltas(self):
        gaps = [0, 3, 1, 10]
        data = varbyte_encode(gaps)
        assert varbyte_decode_deltas(data, 0, 4, base=100) == [100, 103, 104, 114]

    def test_roundtrip_random(self):
        rng = random.Random(1)
        values = [rng.randrange(0, 1 << 40) for _ in range(500)]
        assert varbyte_decode(varbyte_encode(values)) == values


class TestBitIO:
    def test_roundtrip_bits(self):
        writer = BitWriter()
        writer.write_bits(0b1011, 4)
        writer.write_bits(0b1, 1)
        reader = BitReader(writer.getvalue())
        assert reader.read_bits(4) == 0b1011
        assert reader.read_bit() == 1

    def test_exhausted_stream_raises(self):
        reader = BitReader(b"")
        with pytest.raises(ValueError):
            reader.read_bit()


class TestElias:
    VALUES = [1, 2, 3, 4, 7, 8, 100, 1000, 2**20, 2**33]

    def test_gamma_roundtrip(self):
        data = elias_gamma_encode(self.VALUES)
        assert elias_gamma_decode(data, len(self.VALUES)) == self.VALUES

    def test_delta_roundtrip(self):
        data = elias_delta_encode(self.VALUES)
        assert elias_delta_decode(data, len(self.VALUES)) == self.VALUES

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            elias_gamma_encode([0])
        with pytest.raises(ValueError):
            elias_delta_encode([0])

    def test_gamma_of_one_is_single_bit(self):
        assert elias_gamma_encode([1] * 8) == b"\xff"

    def test_delta_beats_gamma_for_large_values(self):
        values = [2**20 + i for i in range(50)]
        assert len(elias_delta_encode(values)) < len(elias_gamma_encode(values))

    def test_roundtrip_random(self):
        rng = random.Random(2)
        values = [rng.randrange(1, 1 << 30) for _ in range(300)]
        assert elias_gamma_decode(elias_gamma_encode(values), 300) == values
        assert elias_delta_decode(elias_delta_encode(values), 300) == values


class TestCompressedPostingList:
    def test_roundtrip(self):
        ids = [0, 1, 5, 100, 101, 1000, 10**6]
        plist = CompressedPostingList(ids, block_size=3)
        assert plist.decode() == ids
        assert len(plist) == len(ids)

    def test_empty(self):
        plist = CompressedPostingList([])
        assert len(plist) == 0
        assert plist.decode() == []
        assert plist.first_geq(5) is None
        assert 3 not in plist

    def test_non_increasing_rejected(self):
        with pytest.raises(ValueError):
            CompressedPostingList([1, 1])
        with pytest.raises(ValueError):
            CompressedPostingList([5, 3])

    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            CompressedPostingList([1], block_size=0)

    def test_contains(self):
        ids = list(range(0, 500, 7))
        plist = CompressedPostingList(ids, block_size=16)
        for probe in range(510):
            assert (probe in plist) == (probe in set(ids))

    def test_first_geq(self):
        ids = [10, 20, 30, 40]
        plist = CompressedPostingList(ids, block_size=2)
        assert plist.first_geq(0) == 10
        assert plist.first_geq(10) == 10
        assert plist.first_geq(11) == 20
        assert plist.first_geq(35) == 40
        assert plist.first_geq(41) is None

    def test_first_geq_block_boundary(self):
        ids = list(range(0, 100, 3))
        plist = CompressedPostingList(ids, block_size=5)
        from bisect import bisect_left

        for probe in range(105):
            position = bisect_left(ids, probe)
            expected = ids[position] if position < len(ids) else None
            assert plist.first_geq(probe) == expected

    def test_compression_saves_space_on_dense_lists(self):
        ids = list(range(10_000))
        plist = CompressedPostingList(ids)
        assert plist.size_in_bytes() < 8 * len(ids) / 3

    def test_roundtrip_random(self):
        rng = random.Random(3)
        for _ in range(20):
            ids = sorted(rng.sample(range(100_000), rng.randint(0, 300)))
            plist = CompressedPostingList(ids, block_size=rng.randint(1, 50))
            assert plist.decode() == ids


class TestCompressedProbeJoin:
    def test_equivalence_with_naive(self):
        from repro import NaiveJoin, OverlapPredicate
        from repro.compression.compressed_join import CompressedProbeJoin
        from tests.conftest import random_dataset

        data = random_dataset(seed=60)
        predicate = OverlapPredicate(4)
        truth = NaiveJoin().join(data, predicate).pair_set()
        result = CompressedProbeJoin().join(data, predicate)
        assert result.pair_set() == truth
        assert result.counters.extra["index_bytes_compressed"] > 0

    def test_jaccard_equivalence(self):
        from repro import JaccardPredicate, NaiveJoin
        from repro.compression.compressed_join import CompressedProbeJoin
        from tests.conftest import random_dataset

        data = random_dataset(seed=61)
        predicate = JaccardPredicate(0.6)
        truth = NaiveJoin().join(data, predicate).pair_set()
        assert CompressedProbeJoin().join(data, predicate).pair_set() == truth

    def test_rejects_weighted(self):
        from repro import WeightedOverlapPredicate
        from repro.compression.compressed_join import CompressedProbeJoin
        from tests.conftest import random_dataset

        with pytest.raises(ValueError):
            CompressedProbeJoin().join(random_dataset(seed=62), WeightedOverlapPredicate(2.0))

    def test_reports_footprints(self):
        from repro import OverlapPredicate
        from repro.compression.compressed_join import CompressedProbeJoin
        from tests.conftest import random_dataset

        data = random_dataset(seed=63, n_base=100)
        result = CompressedProbeJoin().join(data, OverlapPredicate(4))
        compressed = result.counters.extra["index_bytes_compressed"]
        plain = result.counters.extra["index_bytes_plain"]
        assert compressed < plain
