"""Unit tests for the edit-distance predicate (§5.2.3)."""

import pytest

from repro.predicates.edit_distance import (
    EditDistancePredicate,
    numbered_qgrams,
    qgram_dataset,
)


class TestNumberedQgrams:
    def test_repeated_grams_are_numbered(self):
        grams = numbered_qgrams("aaaa", q=3)
        # padded: ##a #aa aaa aaa aa$ a$$ -> 'aaa' twice, numbered 0 and 1
        assert len(grams) == len(set(grams))
        assert "aaa\x000" in grams
        assert "aaa\x001" in grams

    def test_count_is_length_plus_q_minus_one(self):
        for text in ("a", "ab", "abcdef", "aaaa"):
            assert len(numbered_qgrams(text, q=3)) == len(text) + 2

    def test_bag_intersection_equals_set_intersection(self):
        a = set(numbered_qgrams("aaaa", q=3))
        b = set(numbered_qgrams("aaab", q=3))
        # bag intersection of padded grams computed by hand:
        # aaaa: ##a #aa aaa aaa aa$ a$$ ; aaab: ##a #aa aaa aab ab$ b$$
        assert len(a & b) == 3


class TestQgramDataset:
    def test_payloads_kept(self):
        data = qgram_dataset(["abc", "abd"])
        assert data.payload(0) == "abc"
        assert data.payload(1) == "abd"

    def test_norm_equals_padded_gram_count(self):
        data = qgram_dataset(["abc", "a"])
        bound = EditDistancePredicate(1).bind(data)
        assert bound.norm(0) == 5.0
        assert bound.norm(1) == 3.0


class TestEditDistancePredicate:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            EditDistancePredicate(-1)
        with pytest.raises(ValueError):
            EditDistancePredicate(1, q=0)

    def test_requires_payloads(self):
        from repro import Dataset

        with pytest.raises(ValueError):
            EditDistancePredicate(1).bind(Dataset([(0, 1)]))

    def test_threshold_formula(self):
        data = qgram_dataset(["abcdef", "abcdeg"])
        bound = EditDistancePredicate(k=2, q=3).bind(data)
        # T = max(6, 6) - 1 - 3*(2-1) = 2
        assert bound.threshold(bound.norm(0), bound.norm(1)) == pytest.approx(2.0)

    def test_qgram_bound_soundness(self):
        """Pairs within distance k share at least T(r, s) numbered grams."""
        import random

        from repro.text.editdist import edit_distance

        rng = random.Random(9)
        strings = ["".join(rng.choice("ab") for _ in range(rng.randint(3, 10))) for _ in range(40)]
        data = qgram_dataset(strings, q=3)
        predicate = EditDistancePredicate(k=2, q=3)
        bound = predicate.bind(data)
        for i in range(len(strings)):
            for j in range(i + 1, len(strings)):
                if edit_distance(strings[i], strings[j]) <= 2:
                    shared = bound.match_weight(i, j)
                    required = bound.threshold(bound.norm(i), bound.norm(j))
                    assert shared >= required - 1e-9, (strings[i], strings[j])

    def test_verify_runs_banded_dp(self):
        data = qgram_dataset(["database", "databse", "warehouse"])
        bound = EditDistancePredicate(k=1).bind(data)
        ok, distance = bound.verify(0, 1)
        assert ok and distance == 1.0
        ok, distance = bound.verify(0, 2)
        assert not ok

    def test_band_filter_is_length_band(self):
        data = qgram_dataset(["ab", "abcd", "abcde"])
        bound = EditDistancePredicate(k=2).bind(data)
        band = bound.band_filter()
        assert band.accepts(0, 1)       # lengths 2, 4
        assert not band.accepts(0, 2)   # lengths 2, 5

    def test_short_string_cutoff(self):
        assert EditDistancePredicate(k=2, q=3).short_string_cutoff() == 4
        assert EditDistancePredicate(k=1, q=3).short_string_cutoff() == 1
