"""Retry policy: classification, backoff schedule, injectable everything."""

import random

import pytest

from repro.runtime.context import JoinContext
from repro.runtime.errors import (
    DeadlineExceeded,
    JoinCancelled,
    JoinTimeout,
    SnapshotCorrupted,
)
from repro.runtime.faults import FakeClock, InjectedFault
from repro.serving.retry import RetryPolicy, default_retryable


class TestDefaultRetryable:
    def test_os_errors_are_transient(self):
        assert default_retryable(OSError("disk hiccup"))
        assert default_retryable(InjectedFault("fsync", 1))

    def test_interruptions_are_not(self):
        assert not default_retryable(JoinTimeout(1.0, 1.0))
        assert not default_retryable(JoinCancelled("operator"))

    def test_programming_and_corruption_errors_are_not(self):
        assert not default_retryable(ValueError("bug"))
        assert not default_retryable(SnapshotCorrupted("p", "torn"))


class _Flaky:
    """Callable failing the first ``failures`` calls with ``exc``."""

    def __init__(self, failures: int, exc: BaseException):
        self.failures = failures
        self.exc = exc
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc
        return "ok"


def _policy(**kwargs) -> tuple[RetryPolicy, list]:
    sleeps: list[float] = []
    kwargs.setdefault("rng", random.Random(42))
    policy = RetryPolicy(sleep=sleeps.append, **kwargs)
    return policy, sleeps


class TestRun:
    def test_transient_fault_retried_to_success(self):
        policy, sleeps = _policy(max_attempts=3)
        flaky = _Flaky(2, OSError("hiccup"))
        assert policy.run(flaky) == "ok"
        assert flaky.calls == 3
        assert len(sleeps) == 2

    def test_attempts_are_bounded(self):
        policy, sleeps = _policy(max_attempts=3)
        flaky = _Flaky(99, OSError("persistent"))
        with pytest.raises(OSError, match="persistent"):
            policy.run(flaky)
        assert flaky.calls == 3
        assert len(sleeps) == 2

    def test_non_retryable_fails_immediately_without_sleeping(self):
        policy, sleeps = _policy(max_attempts=5)
        flaky = _Flaky(99, JoinTimeout(1.0, 1.0))
        with pytest.raises(JoinTimeout):
            policy.run(flaky)
        assert flaky.calls == 1
        assert sleeps == []

    def test_on_retry_sees_each_attempt(self):
        policy, _ = _policy(max_attempts=3)
        seen = []
        flaky = _Flaky(2, OSError("hiccup"))
        policy.run(flaky, on_retry=lambda a, e, d: seen.append((a, type(e), d)))
        assert [(a, t) for a, t, _ in seen] == [(0, OSError), (1, OSError)]
        assert all(delay >= 0 for _, _, delay in seen)


class TestDeadlineClamp:
    """Backoff must never sleep past the context's remaining deadline."""

    def test_overshooting_retry_raises_immediately_without_sleeping(self):
        policy, sleeps = _policy(max_attempts=3, base_delay=1.0, jitter=0.0)
        context = JoinContext(deadline_seconds=0.5, clock=FakeClock())
        flaky = _Flaky(99, OSError("hiccup"))
        with pytest.raises(DeadlineExceeded) as err:
            policy.run(flaky, context=context)
        # The first backoff (1.0s) already overshoots the 0.5s budget:
        # one attempt, zero sleeps, and the attempt's failure chained.
        assert flaky.calls == 1
        assert sleeps == []
        assert isinstance(err.value.__cause__, OSError)

    def test_retries_proceed_while_budget_remains_then_clamp(self):
        clock = FakeClock()
        sleeps: list[float] = []

        def sleeping(seconds: float) -> None:
            sleeps.append(seconds)
            clock.advance(seconds)

        policy = RetryPolicy(
            max_attempts=5, base_delay=0.1, multiplier=2.0, jitter=0.0,
            sleep=sleeping,
        )
        context = JoinContext(deadline_seconds=0.25, clock=clock)
        flaky = _Flaky(99, OSError("hiccup"))
        with pytest.raises(DeadlineExceeded):
            policy.run(flaky, context=context)
        # 0.1 fits in 0.25; after it 0.15 remains and the next backoff
        # (0.2) overshoots — fail now rather than sleep into the wall.
        assert sleeps == pytest.approx([0.1])
        assert flaky.calls == 2

    def test_unbounded_context_never_clamps(self):
        policy, sleeps = _policy(max_attempts=3, base_delay=10.0, jitter=0.0)
        context = JoinContext(clock=FakeClock())  # no deadline
        flaky = _Flaky(2, OSError("hiccup"))
        assert policy.run(flaky, context=context) == "ok"
        assert len(sleeps) == 2

    def test_no_context_behaves_as_before(self):
        policy, sleeps = _policy(max_attempts=2, base_delay=1.5, jitter=0.0)
        flaky = _Flaky(1, OSError("hiccup"))
        assert policy.run(flaky) == "ok"
        assert sleeps == pytest.approx([1.5])

    def test_deadline_exceeded_is_a_join_timeout(self):
        # Callers catching JoinTimeout keep working: DeadlineExceeded is
        # the same condition surfaced from the retry path.
        assert DeadlineExceeded is JoinTimeout


class TestBackoffSchedule:
    def test_exponential_growth_without_jitter(self):
        policy, _ = _policy(
            max_attempts=5, base_delay=0.1, multiplier=2.0, max_delay=10.0,
            jitter=0.0,
        )
        assert [policy.backoff(i) for i in range(4)] == pytest.approx(
            [0.1, 0.2, 0.4, 0.8]
        )

    def test_max_delay_caps_the_schedule(self):
        policy, _ = _policy(
            max_attempts=9, base_delay=1.0, multiplier=10.0, max_delay=3.0,
            jitter=0.0,
        )
        assert policy.backoff(5) == pytest.approx(3.0)

    def test_jitter_stays_in_band_and_is_seed_deterministic(self):
        make = lambda: RetryPolicy(
            base_delay=1.0, multiplier=1.0, jitter=0.5,
            rng=random.Random(7), sleep=lambda s: None,
        )
        first = [make().backoff(i) for i in range(20)]
        second = [make().backoff(i) for i in range(20)]
        assert first == second  # same seed, same schedule
        # jitter=0.5 over base 1.0: every delay in [0.5, 1.0]
        assert all(0.5 <= delay <= 1.0 for delay in first)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -1.0},
            {"multiplier": 0.5},
            {"jitter": 1.5},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)
