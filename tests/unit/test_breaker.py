"""Circuit breaker: every transition, deterministically, on a fake clock."""

import threading

import pytest

from repro.runtime.errors import CircuitOpen
from repro.runtime.faults import FakeClock
from repro.serving.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(failure_threshold=3, cooldown_seconds=10.0, clock=clock)


def _fail(breaker: CircuitBreaker, times: int) -> None:
    for _ in range(times):
        breaker.admit()
        breaker.record_failure()


class TestClosedToOpen:
    def test_trips_at_threshold(self, breaker):
        _fail(breaker, 2)
        assert breaker.state == CLOSED
        _fail(breaker, 1)
        assert breaker.state == OPEN
        assert breaker.times_opened == 1

    def test_success_resets_the_consecutive_count(self, breaker):
        _fail(breaker, 2)
        breaker.admit()
        breaker.record_success()
        _fail(breaker, 2)  # only 2 consecutive now — not enough
        assert breaker.state == CLOSED

    def test_open_rejects_with_retry_after(self, breaker, clock):
        _fail(breaker, 3)
        clock.advance(4.0)
        with pytest.raises(CircuitOpen) as err:
            breaker.admit()
        assert err.value.state == OPEN
        assert err.value.retry_after == pytest.approx(6.0)


class TestHalfOpen:
    def test_cooldown_expiry_half_opens(self, breaker, clock):
        _fail(breaker, 3)
        clock.advance(9.999)
        assert breaker.state == OPEN
        clock.advance(0.001)
        assert breaker.state == HALF_OPEN

    def test_trial_success_closes(self, breaker, clock):
        _fail(breaker, 3)
        clock.advance(10.0)
        breaker.admit()  # the trial request
        breaker.record_success()
        assert breaker.state == CLOSED
        # The circuit is fully healthy again: it takes a full threshold
        # of new consecutive failures to re-open.
        _fail(breaker, 2)
        assert breaker.state == CLOSED

    def test_trial_failure_reopens_and_restarts_cooldown(self, breaker, clock):
        _fail(breaker, 3)
        clock.advance(10.0)
        breaker.admit()
        breaker.record_failure()  # one failed trial re-opens immediately
        assert breaker.state == OPEN
        assert breaker.times_opened == 2
        clock.advance(9.0)
        assert breaker.state == OPEN  # cooldown restarted at the re-open
        clock.advance(1.0)
        assert breaker.state == HALF_OPEN

    def test_trial_slots_are_bounded(self, clock):
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=5.0,
            half_open_max_calls=1, clock=clock,
        )
        _fail(breaker, 1)
        clock.advance(5.0)
        breaker.admit()  # takes the only trial slot
        with pytest.raises(CircuitOpen) as err:
            breaker.admit()
        assert err.value.state == HALF_OPEN
        assert err.value.retry_after == 0.0
        breaker.record_success()
        assert breaker.state == CLOSED


class TestHalfOpenConcurrency:
    """Racing probes must admit exactly one trial per half-open window."""

    ROUNDS = 25

    def test_two_threads_admit_exactly_one_trial(self, clock):
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=5.0,
            half_open_max_calls=1, clock=clock,
        )
        for _ in range(self.ROUNDS):
            _fail(breaker, 1)
            clock.advance(5.0)
            assert breaker.state == HALF_OPEN
            barrier = threading.Barrier(2, timeout=10.0)
            outcomes: list[str] = []
            lock = threading.Lock()

            def probe():
                barrier.wait()
                try:
                    breaker.admit()
                except CircuitOpen:
                    with lock:
                        outcomes.append("rejected")
                else:
                    with lock:
                        outcomes.append("admitted")

            threads = [
                threading.Thread(target=probe, daemon=True) for _ in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(10.0)
                assert not thread.is_alive()
            assert sorted(outcomes) == ["admitted", "rejected"]
            breaker.record_success()  # the single trial closes the circuit
            assert breaker.state == CLOSED


class TestStaleResults:
    """Results from requests admitted before a trip must not move the state.

    An in-flight request admitted while CLOSED can report its outcome
    after other requests already tripped the breaker: that stale report
    says nothing about current health and must neither close the
    circuit early nor restart the cooldown.
    """

    def test_stale_success_while_open_does_not_close(self, breaker, clock):
        breaker.admit()  # in-flight request, admitted while CLOSED
        _fail(breaker, 3)
        assert breaker.state == OPEN
        breaker.record_success()  # the straggler reports back
        assert breaker.state == OPEN
        # The cooldown clock still runs from the original trip.
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN

    def test_stale_failure_in_half_open_does_not_restart_cooldown(
        self, breaker, clock
    ):
        breaker.admit()  # in-flight request, admitted while CLOSED
        _fail(breaker, 3)
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN
        breaker.record_failure()  # straggler's failure: not a trial result
        assert breaker.state == HALF_OPEN
        assert breaker.times_opened == 1
        # A real trial is still available and closes normally.
        breaker.admit()
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_stale_success_in_half_open_does_not_close(self, breaker, clock):
        breaker.admit()  # in-flight request, admitted while CLOSED
        _fail(breaker, 3)
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN
        breaker.record_success()  # straggler, no trial slot held
        # Only an admitted trial may vouch for the dependency's health.
        assert breaker.state == HALF_OPEN


class TestFullCycle:
    def test_closed_open_half_open_closed(self, breaker, clock):
        """The acceptance-criteria walk, every hop asserted."""
        assert breaker.state == CLOSED
        _fail(breaker, 3)
        assert breaker.state == OPEN
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN
        breaker.admit()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.times_opened == 1


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"cooldown_seconds": -1.0},
            {"half_open_max_calls": 0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)
