"""Circuit breaker: every transition, deterministically, on a fake clock."""

import pytest

from repro.runtime.errors import CircuitOpen
from repro.runtime.faults import FakeClock
from repro.serving.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(failure_threshold=3, cooldown_seconds=10.0, clock=clock)


def _fail(breaker: CircuitBreaker, times: int) -> None:
    for _ in range(times):
        breaker.admit()
        breaker.record_failure()


class TestClosedToOpen:
    def test_trips_at_threshold(self, breaker):
        _fail(breaker, 2)
        assert breaker.state == CLOSED
        _fail(breaker, 1)
        assert breaker.state == OPEN
        assert breaker.times_opened == 1

    def test_success_resets_the_consecutive_count(self, breaker):
        _fail(breaker, 2)
        breaker.admit()
        breaker.record_success()
        _fail(breaker, 2)  # only 2 consecutive now — not enough
        assert breaker.state == CLOSED

    def test_open_rejects_with_retry_after(self, breaker, clock):
        _fail(breaker, 3)
        clock.advance(4.0)
        with pytest.raises(CircuitOpen) as err:
            breaker.admit()
        assert err.value.state == OPEN
        assert err.value.retry_after == pytest.approx(6.0)


class TestHalfOpen:
    def test_cooldown_expiry_half_opens(self, breaker, clock):
        _fail(breaker, 3)
        clock.advance(9.999)
        assert breaker.state == OPEN
        clock.advance(0.001)
        assert breaker.state == HALF_OPEN

    def test_trial_success_closes(self, breaker, clock):
        _fail(breaker, 3)
        clock.advance(10.0)
        breaker.admit()  # the trial request
        breaker.record_success()
        assert breaker.state == CLOSED
        # The circuit is fully healthy again: it takes a full threshold
        # of new consecutive failures to re-open.
        _fail(breaker, 2)
        assert breaker.state == CLOSED

    def test_trial_failure_reopens_and_restarts_cooldown(self, breaker, clock):
        _fail(breaker, 3)
        clock.advance(10.0)
        breaker.admit()
        breaker.record_failure()  # one failed trial re-opens immediately
        assert breaker.state == OPEN
        assert breaker.times_opened == 2
        clock.advance(9.0)
        assert breaker.state == OPEN  # cooldown restarted at the re-open
        clock.advance(1.0)
        assert breaker.state == HALF_OPEN

    def test_trial_slots_are_bounded(self, clock):
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=5.0,
            half_open_max_calls=1, clock=clock,
        )
        _fail(breaker, 1)
        clock.advance(5.0)
        breaker.admit()  # takes the only trial slot
        with pytest.raises(CircuitOpen) as err:
            breaker.admit()
        assert err.value.state == HALF_OPEN
        assert err.value.retry_after == 0.0
        breaker.record_success()
        assert breaker.state == CLOSED


class TestFullCycle:
    def test_closed_open_half_open_closed(self, breaker, clock):
        """The acceptance-criteria walk, every hop asserted."""
        assert breaker.state == CLOSED
        _fail(breaker, 3)
        assert breaker.state == OPEN
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN
        breaker.admit()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.times_opened == 1


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"cooldown_seconds": -1.0},
            {"half_open_max_calls": 0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)
