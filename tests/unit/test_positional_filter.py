"""Unit tests for the PPJoin+ positional/suffix filter stack."""

import pytest

from repro import (
    Dataset,
    DicePredicate,
    JaccardPredicate,
    NaiveJoin,
    OverlapCoefficientPredicate,
    OverlapPredicate,
    WeightedOverlapPredicate,
    make_algorithm,
)
from repro.core.positional_filter import PositionalFilterJoin, _suffix_hamming_lb
from repro.core.prefix_filter import PrefixFilterJoin
from repro.filters import BitmapFilterConfig
from repro.predicates.hamming import HammingPredicate
from tests.conftest import random_dataset


class TestPositionalFilterJoin:
    def test_basic(self, small_dataset):
        result = PositionalFilterJoin().join(small_dataset, OverlapPredicate(5))
        assert result.pair_set() == {(0, 1)}

    def test_registry(self):
        assert isinstance(make_algorithm("positional-filter"), PositionalFilterJoin)

    @pytest.mark.parametrize("seed", [1, 4, 9])
    @pytest.mark.parametrize("t", [2, 4, 6])
    def test_overlap_equivalence(self, seed, t):
        data = random_dataset(seed=seed)
        predicate = OverlapPredicate(t)
        truth = NaiveJoin().join(data, predicate).pair_set()
        assert PositionalFilterJoin().join(data, predicate).pair_set() == truth

    @pytest.mark.parametrize("f", [0.5, 0.7, 0.9])
    def test_jaccard_equivalence(self, f):
        data = random_dataset(seed=12)
        predicate = JaccardPredicate(f)
        truth = NaiveJoin().join(data, predicate).pair_set()
        assert PositionalFilterJoin().join(data, predicate).pair_set() == truth

    def test_dice_equivalence(self):
        data = random_dataset(seed=13)
        predicate = DicePredicate(0.7)
        truth = NaiveJoin().join(data, predicate).pair_set()
        assert PositionalFilterJoin().join(data, predicate).pair_set() == truth

    def test_overlap_coefficient_equivalence(self):
        data = random_dataset(seed=21)
        predicate = OverlapCoefficientPredicate(0.8)
        truth = NaiveJoin().join(data, predicate).pair_set()
        assert PositionalFilterJoin().join(data, predicate).pair_set() == truth

    def test_hamming_equivalence_small_k(self):
        data = random_dataset(seed=14, min_size=3)
        predicate = HammingPredicate(1)
        truth = NaiveJoin().join(data, predicate).pair_set()
        assert PositionalFilterJoin().join(data, predicate).pair_set() == truth

    def test_rejects_weighted(self):
        with pytest.raises(ValueError):
            PositionalFilterJoin().join(
                random_dataset(seed=15), WeightedOverlapPredicate(2.0)
            )

    def test_rejects_negative_suffix_depth(self):
        with pytest.raises(ValueError):
            PositionalFilterJoin(suffix_max_depth=-1)

    def test_empty_dataset(self):
        assert (
            PositionalFilterJoin().join(Dataset([]), OverlapPredicate(1)).pairs == []
        )

    def test_stack_prunes_candidates_below_prefix_filter(self):
        # The whole point: same pairs, strictly fewer candidates reach
        # verification than the basic prefix filter lets through.
        data = random_dataset(seed=16, n_base=150)
        predicate = JaccardPredicate(0.6)
        basic = PrefixFilterJoin().join(data, predicate)
        stacked = PositionalFilterJoin().join(data, predicate)
        assert stacked.pair_set() == basic.pair_set()
        assert (
            stacked.counters.candidates_checked < basic.counters.candidates_checked
        )
        rejected = (
            stacked.counters.candidate_rejections_position
            + stacked.counters.candidate_rejections_suffix
        )
        assert rejected > 0

    def test_rejection_counters_excluded_from_total_work(self):
        data = random_dataset(seed=17)
        counters = (
            PositionalFilterJoin().join(data, JaccardPredicate(0.6)).counters
        )
        work = (
            counters.heap_pops
            + counters.list_items_touched
            + counters.binary_searches
            + counters.pairs_generated
            + counters.pairs_verified
        )
        assert counters.total_work() == work

    def test_suffix_filter_off_is_exact_and_counts_nothing(self):
        data = random_dataset(seed=18, n_base=120)
        predicate = JaccardPredicate(0.6)
        on = PositionalFilterJoin(suffix_filter=True).join(data, predicate)
        off = PositionalFilterJoin(suffix_filter=False).join(data, predicate)
        assert off.pair_set() == on.pair_set()
        assert off.counters.candidate_rejections_suffix == 0
        assert "suffix_recursions" not in off.counters.extra
        # candidates_checked is counted *before* the suffix probe, so
        # the knob must not move it.
        assert off.counters.candidates_checked == on.counters.candidates_checked
        # What the suffix filter rejects, the plain variant must verify.
        assert off.counters.pairs_verified >= on.counters.pairs_verified

    def test_suffix_recursions_recorded(self):
        data = random_dataset(seed=19, n_base=120)
        result = PositionalFilterJoin().join(data, JaccardPredicate(0.6))
        if result.counters.candidate_rejections_suffix:
            assert result.counters.extra["suffix_recursions"] > 0

    def test_bitmap_filter_composes(self):
        data = random_dataset(seed=20, n_base=100)
        predicate = OverlapPredicate(4)
        plain = PositionalFilterJoin().join(data, predicate)
        filtered_join = PositionalFilterJoin()
        filtered_join.bitmap_filter = BitmapFilterConfig(width=64, adaptive=False)
        filtered = filtered_join.join(data, predicate)
        assert filtered.pair_set() == plain.pair_set()
        assert filtered.counters.bitmap_checks > 0

    def test_unmatchable_records_skipped(self):
        data = Dataset([(0,), (0, 1, 2, 3, 4), (0, 1, 2, 3, 5)])
        result = PositionalFilterJoin().join(data, OverlapPredicate(4))
        assert result.pair_set() == {(1, 2)}


class TestSuffixHammingBound:
    """The divide-and-conquer bound never exceeds the true distance."""

    @staticmethod
    def _true_hamming(x, y):
        return len(set(x) ^ set(y))

    @pytest.mark.parametrize("depth", [0, 1, 2, 5])
    def test_lower_bounds_true_distance(self, depth):
        import random

        rng = random.Random(depth)
        for _ in range(200):
            x = tuple(sorted(rng.sample(range(30), rng.randint(0, 10))))
            y = tuple(sorted(rng.sample(range(30), rng.randint(0, 10))))
            calls = [0]
            bound = _suffix_hamming_lb(
                x, 0, len(x), y, 0, len(y), depth, calls
            )
            assert bound <= self._true_hamming(x, y)
            assert calls[0] >= 1

    def test_exact_on_disjoint_and_identical(self):
        x = (1, 3, 5, 7)
        assert _suffix_hamming_lb(x, 0, 4, x, 0, 4, 8, [0]) == 0
        y = (2, 4, 6, 8)
        assert _suffix_hamming_lb(x, 0, 4, y, 0, 4, 8, [0]) == 8


class TestUnitScoreContract:
    """The unit-score gate scans every record, not a sampled head.

    Regression: the old check sampled only the first five records, so a
    predicate whose non-unit weights first appear at rid >= 5 slipped
    through and produced silently wrong joins.
    """

    @staticmethod
    def _late_weighted_setup():
        # Token 99 appears only from rid 6 on; its weight is not 1.0.
        records = [(i, i + 1, i + 2) for i in range(6)] + [
            (99, 100 + i, 101 + i) for i in range(4)
        ]
        predicate = WeightedOverlapPredicate(
            2.0, weights=lambda token: 2.0 if token == 99 else 1.0
        )
        return Dataset(records), predicate

    @pytest.mark.parametrize(
        "factory", [PrefixFilterJoin, PositionalFilterJoin]
    )
    def test_late_non_unit_scores_rejected(self, factory):
        data, predicate = self._late_weighted_setup()
        with pytest.raises(ValueError, match="unit-score"):
            factory().join(data, predicate)

    def test_late_non_unit_scores_rejected_by_compressed_join(self):
        from repro.compression.compressed_join import CompressedProbeJoin

        data, predicate = self._late_weighted_setup()
        with pytest.raises(ValueError, match="unit-score"):
            CompressedProbeJoin().join(data, predicate)

    def test_late_non_unit_scores_rejected_by_disk_index(self, tmp_path):
        from repro.storage.disk_index import DiskInvertedIndex

        data, predicate = self._late_weighted_setup()
        with pytest.raises(ValueError, match="unit-score"):
            DiskInvertedIndex.build(
                data, predicate.bind(data), str(tmp_path / "idx.bin")
            )

    def test_all_unit_weights_accepted(self):
        # The full scan is a gate, not a ban: explicitly unit weights
        # pass even without the static unit_scores declaration.
        data = random_dataset(seed=22)
        predicate = WeightedOverlapPredicate(3.0, weights=lambda token: 1.0)
        truth = NaiveJoin().join(data, OverlapPredicate(3)).pair_set()
        assert PositionalFilterJoin().join(data, predicate).pair_set() == truth


class TestDeterministicEmission:
    """Emission order is a pure function of the input (no per-probe sort)."""

    @pytest.mark.parametrize(
        "factory", [PrefixFilterJoin, PositionalFilterJoin]
    )
    def test_repeat_runs_identical(self, factory):
        data = random_dataset(seed=23, n_base=90)
        predicate = JaccardPredicate(0.5)
        first = factory().join(data, predicate)
        second = factory().join(data, predicate)
        assert [
            (p.rid_a, p.rid_b, p.similarity) for p in first.pairs
        ] == [(p.rid_a, p.rid_b, p.similarity) for p in second.pairs]
        assert first.counters == second.counters
