"""Unit tests for the command-line interface."""

import os
import signal

import pytest

import repro.cli as cli
from repro.cli import EXIT_INTERRUPTED, EXIT_TIMEOUT, EXIT_USAGE, build_parser, main
from repro.runtime.checkpoint import JoinCheckpointer
from repro.runtime.context import JoinContext
from repro.runtime.faults import CountdownCancellation

SAMPLE = """efficient set joins on similarity predicates
set joins on similarity predicates efficient
gardening content totally different
totally different gardening content
nothing like the others here at all
"""


@pytest.fixture
def sample_file(tmp_path):
    path = tmp_path / "records.txt"
    path.write_text(SAMPLE)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_join_requires_threshold(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["join", "-i", "x.txt"])


class TestJoinCommand:
    def test_jaccard_join(self, sample_file, capsys):
        code = main(["join", "-i", sample_file, "--predicate", "jaccard", "-t", "0.8"])
        assert code == 0
        out = capsys.readouterr().out.strip().splitlines()
        pairs = {tuple(line.split("\t")[:2]) for line in out}
        assert ("0", "1") in pairs
        assert ("2", "3") in pairs
        assert len(pairs) == 2

    def test_overlap_join_with_algorithm(self, sample_file, capsys):
        code = main(
            ["join", "-i", sample_file, "--predicate", "overlap", "-t", "4",
             "--algorithm", "probe-count-optmerge"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "0\t1\t" in out

    def test_3gram_tokenizer(self, sample_file, capsys):
        code = main(
            ["join", "-i", sample_file, "--tokenizer", "3grams",
             "--predicate", "jaccard", "-t", "0.7"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "0\t1\t" in out


class TestApproxMode:
    def test_mode_approx_finds_duplicates(self, sample_file, capsys):
        code = main(
            ["join", "-i", sample_file, "--predicate", "jaccard", "-t", "0.8",
             "--mode", "approx", "--target-recall", "0.9", "--seed", "7"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "algorithm=approx" in captured.err
        assert "# approx:" in captured.err
        assert "seed=7" in captured.err

    def test_fixed_seed_matches_across_worker_counts(self, sample_file, capsys):
        outputs = []
        for workers in ("1", "2"):
            code = main(
                ["join", "-i", sample_file, "--predicate", "jaccard",
                 "-t", "0.8", "--mode", "approx", "--seed", "5",
                 "--workers", workers]
            )
            assert code == 0
            outputs.append(sorted(capsys.readouterr().out.strip().splitlines()))
        assert outputs[0] == outputs[1]

    def test_mode_approx_rejects_explicit_algorithm(self, sample_file, capsys):
        code = main(
            ["join", "-i", sample_file, "--predicate", "jaccard", "-t", "0.8",
             "--mode", "approx", "--algorithm", "probe-count"]
        )
        assert code == EXIT_USAGE
        assert "--mode approx" in capsys.readouterr().err

    def test_dedupe_accepts_mode_approx(self, sample_file, capsys):
        code = main(
            ["dedupe", "-i", sample_file, "--predicate", "jaccard", "-t", "0.8",
             "--mode", "approx", "--seed", "3"]
        )
        assert code == 0
        assert "# approx:" in capsys.readouterr().err

    def test_editjoin_accepts_seed(self, tmp_path, capsys):
        path = tmp_path / "names.txt"
        path.write_text("sunita sarawagi\nsunita sarawagy\nalok kirpal\n")
        code = main(
            ["editjoin", "-i", str(path), "-k", "1",
             "--algorithm", "approx", "--seed", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert "0\t1\t1" in out


class TestDedupeCommand:
    def test_groups_printed(self, sample_file, capsys):
        code = main(["dedupe", "-i", sample_file, "--predicate", "jaccard", "-t", "0.8"])
        assert code == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert out == ["0\t1", "2\t3"]


class TestEditJoinCommand:
    def test_editjoin(self, tmp_path, capsys):
        path = tmp_path / "names.txt"
        path.write_text("sunita sarawagi\nsunita sarawagy\nalok kirpal\n")
        code = main(["editjoin", "-i", str(path), "-k", "1"])
        assert code == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert out == ["0\t1\t1"]


class TestStatsCommand:
    def test_stats(self, sample_file, capsys):
        code = main(["stats", "-i", sample_file])
        assert code == 0
        out = capsys.readouterr().out
        assert "records\t5" in out
        assert "avg_set_size" in out


class TestServeCommand:
    def test_serve_answers_queries_from_file(self, sample_file, tmp_path, capsys):
        queries = tmp_path / "queries.txt"
        queries.write_text(
            "efficient set joins on similarity\n"
            "\n"
            "no overlap with anything here whatsoever\n"
        )
        code = main(
            ["serve", "-i", sample_file, "--predicate", "jaccard", "-t", "0.7",
             "--queries", str(queries)]
        )
        assert code == 0
        captured = capsys.readouterr()
        rows = [line.split("\t") for line in captured.out.strip().splitlines()]
        # Query 0 matches records 0 and 1; the blank line is skipped and
        # the no-overlap query (qid 1) matches nothing.
        assert [(qid, rid) for qid, rid, _ in rows] == [("0", "0"), ("0", "1")]
        assert "# serve:" in captured.err
        assert "breaker=closed" in captured.err

    def test_serve_health_reports_unknown_query_tokens(
        self, sample_file, tmp_path, capsys
    ):
        queries = tmp_path / "queries.txt"
        queries.write_text("similarity chimera xylophone\n")
        code = main(
            ["serve", "-i", sample_file, "-t", "0.9", "--queries", str(queries)]
        )
        assert code == 0
        assert "unknown_query_tokens=2" in capsys.readouterr().err

    def test_serve_rejects_double_stdin(self, capsys):
        code = main(["serve", "-i", "-", "-t", "0.5", "--queries", "-"])
        assert code == EXIT_USAGE
        assert "stdin" in capsys.readouterr().err

    def test_serve_rejects_bad_worker_count(self, sample_file, capsys):
        code = main(
            ["serve", "-i", sample_file, "-t", "0.5", "--workers", "0"]
        )
        assert code == EXIT_USAGE
        assert "--workers" in capsys.readouterr().err


class TestServeShardedCommand:
    def _serve(self, sample_file, tmp_path, capsys, *extra):
        queries = tmp_path / "queries.txt"
        queries.write_text(
            "efficient set joins on similarity\n"
            "no overlap with anything here whatsoever\n"
        )
        code = main(
            ["serve", "-i", sample_file, "--predicate", "jaccard", "-t", "0.7",
             "--queries", str(queries), *extra]
        )
        return code, capsys.readouterr()

    def test_sharded_rows_match_single_with_completeness_column(
        self, sample_file, tmp_path, capsys
    ):
        _, single = self._serve(sample_file, tmp_path, capsys)
        code, sharded = self._serve(
            sample_file, tmp_path, capsys, "--shards", "3"
        )
        assert code == 0
        single_rows = [
            line.split("\t") for line in single.out.strip().splitlines()
        ]
        sharded_rows = [
            line.split("\t") for line in sharded.out.strip().splitlines()
        ]
        # Identical answers, plus the completeness column; the zero-match
        # query (qid 1) gets a status row instead of vanishing from the
        # TSV stream.
        match_rows = [row for row in sharded_rows if row[1] != "-"]
        assert [row[:3] for row in match_rows] == single_rows
        assert all(row[3] == "complete" for row in sharded_rows)
        assert ["1", "-", "-", "complete"] in sharded_rows
        assert "shards=3" in sharded.err
        assert "(0 partial)" in sharded.err
        assert "breakers=closed,closed,closed" in sharded.err

    def test_sharded_flags_are_validated(self, sample_file, capsys):
        for extra, message in [
            (["--shards", "0"], "--shards"),
            (["--shards", "2", "--shard-workers", "0"], "--shard-workers"),
            (["--shards", "2", "--hedge-delay", "0"], "--hedge-delay"),
            (["--require-complete"], "--shards"),
            (["--hedge-delay", "0.1"], "--shards"),
            (["--shards", "2", "--process-pool"], "--process-pool"),
        ]:
            code = main(["serve", "-i", sample_file, "-t", "0.5", *extra])
            assert code == EXIT_USAGE
            assert message in capsys.readouterr().err

    def test_sharded_with_hedging_and_require_complete(
        self, sample_file, tmp_path, capsys
    ):
        code, captured = self._serve(
            sample_file, tmp_path, capsys,
            "--shards", "2", "--hedge-delay", "0.05", "--require-complete",
            "--query-cache", "8",
        )
        assert code == 0
        assert "hedges" in captured.err

    def test_sharded_cosine_matches_single_index(self, tmp_path, capsys):
        """Cosine's IDF weights are corpus statistics: serving must pin
        them to the *global* corpus. A bare predicate binds the corpus
        its index holds at first insert — one record incrementally, a
        sub-corpus per shard — so without pinned stats the weights are
        wrong and sharded/single answers can silently diverge. The
        corpus here is deliberately frequency-skewed ('alpha' is in
        every record, the rest are rare) so uniform or per-shard IDF
        produces different 4-decimal similarities than global IDF."""
        corpus = tmp_path / "records.txt"
        corpus.write_text(
            "alpha beta gamma delta\n"
            "alpha beta gamma epsilon\n"
            "alpha zeta eta theta\n"
            "alpha iota kappa lambda\n"
            "alpha mu nu xi\n"
        )
        queries = tmp_path / "queries.txt"
        queries.write_text("alpha beta gamma\n")

        def _rows(*extra):
            code = main(
                ["serve", "-i", str(corpus), "--predicate", "cosine",
                 "-t", "0.3", "--queries", str(queries), *extra]
            )
            assert code == 0
            return [
                line.split("\t")
                for line in capsys.readouterr().out.strip().splitlines()
            ]

        single_rows = _rows()
        assert [row[:2] for row in single_rows] == [["0", "0"], ["0", "1"]]
        # The similarities must be the *global*-IDF cosine (weights from
        # the 5-record corpus), computed independently here: the probe
        # {alpha, beta, gamma} against {alpha, beta, gamma, delta-like}.
        from math import log, sqrt

        a, bg = log(1 + 5 / 5), log(1 + 5 / 2)  # idf: alpha / beta, gamma
        rare = log(1 + 5 / 1)  # idf: delta, epsilon
        want = (a * a + 2 * bg * bg) / sqrt(
            (a * a + 2 * bg * bg) * (a * a + 2 * bg * bg + rare * rare)
        )
        assert all(row[2] == f"{want:.4f}" for row in single_rows)
        for shards in ("2", "3"):
            sharded_rows = _rows("--shards", shards)
            match_rows = [row for row in sharded_rows if row[1] != "-"]
            # rids AND 4-decimal similarities identical, every shard count.
            assert [row[:3] for row in match_rows] == single_rows
            assert all(row[3] == "complete" for row in sharded_rows)


class TestEmitQueryResult:
    """The TSV contract for sharded answers, pinned at the emit seam
    (a genuinely partial answer needs fault injection, so the CLI-level
    tests only ever see complete ones)."""

    @staticmethod
    def _future(value):
        from concurrent.futures import Future

        future = Future()
        future.set_result(value)
        return future

    @staticmethod
    def _sharded(matches=(), failed=()):
        from repro.serving import ShardedResult

        ok = tuple(sid for sid in (0, 1) if sid not in failed)
        return ShardedResult(
            matches=tuple(matches),
            shards_ok=ok,
            shards_failed=tuple(failed),
            partial=bool(failed),
        )

    def test_empty_partial_answer_is_visible_in_tsv(self, capsys):
        # Zero surviving matches must still be distinguishable from an
        # exact empty answer *in the TSV stream*, not just on stderr.
        ok = cli._emit_query_result(7, self._future(self._sharded(failed=(1,))), 1.0)
        assert ok is True
        captured = capsys.readouterr()
        assert captured.out == "7\t-\t-\tpartial\n"
        assert "lost shards [1]" in captured.err

    def test_empty_complete_answer_emits_status_row(self, capsys):
        assert cli._emit_query_result(7, self._future(self._sharded()), 1.0)
        captured = capsys.readouterr()
        assert captured.out == "7\t-\t-\tcomplete\n"
        assert captured.err == ""

    def test_partial_answer_with_matches_has_no_status_row(self, capsys):
        from repro.core.results import MatchPair

        result = self._sharded(matches=[MatchPair(4, 9, 0.5)], failed=(1,))
        assert cli._emit_query_result(2, self._future(result), 1.0)
        captured = capsys.readouterr()
        assert captured.out == "2\t4\t0.5000\tpartial\n"

    def test_empty_single_index_answer_emits_nothing(self, capsys):
        # The unsharded three-column format is unchanged.
        assert cli._emit_query_result(7, self._future([]), 1.0)
        assert capsys.readouterr().out == ""


def _one_error_line(capsys) -> str:
    """Assert stderr is exactly one repro-prefixed line (no traceback)."""
    err = capsys.readouterr().err.strip().splitlines()
    assert len(err) == 1
    assert err[0].startswith("repro:")
    return err[0]


class TestOperationalErrors:
    def test_missing_input_exits_2_with_one_line(self, tmp_path, capsys):
        code = main(["join", "-i", str(tmp_path / "nope.txt"), "-t", "0.5"])
        assert code == EXIT_USAGE
        assert "cannot read" in _one_error_line(capsys)

    def test_empty_input_exits_2(self, tmp_path, capsys):
        path = tmp_path / "blank.txt"
        path.write_text("\n   \n\n")
        code = main(["join", "-i", str(path), "-t", "0.5"])
        assert code == EXIT_USAGE
        assert "empty input" in _one_error_line(capsys)

    def test_unknown_algorithm_exits_2(self, sample_file, capsys):
        code = main(
            ["join", "-i", sample_file, "-t", "0.5", "--algorithm", "quantum"]
        )
        assert code == EXIT_USAGE
        assert "quantum" in _one_error_line(capsys)

    def test_non_numeric_threshold_is_an_argparse_error(self, sample_file, capsys):
        with pytest.raises(SystemExit) as err:
            main(["join", "-i", sample_file, "-t", "quite-similar"])
        assert err.value.code == EXIT_USAGE

    def test_out_of_range_threshold_exits_2(self, sample_file, capsys):
        code = main(
            ["join", "-i", sample_file, "--predicate", "jaccard", "-t", "5.0"]
        )
        assert code == EXIT_USAGE
        assert "threshold" in _one_error_line(capsys)

    def test_nonpositive_deadline_exits_2(self, sample_file, capsys):
        code = main(["join", "-i", sample_file, "-t", "0.5", "--deadline", "0"])
        assert code == EXIT_USAGE
        _one_error_line(capsys)

    def test_cluster_mem_needs_memory_budget(self, sample_file, capsys):
        code = main(
            ["join", "-i", sample_file, "-t", "0.5", "--algorithm", "cluster-mem"]
        )
        assert code == EXIT_USAGE
        assert "--memory-budget" in _one_error_line(capsys)


class TestHardenedRuntimeFlags:
    def test_expired_deadline_exits_124_with_resume_hint(
        self, sample_file, tmp_path, capsys
    ):
        code = main(
            ["join", "-i", sample_file, "-t", "0.5", "--deadline", "1e-9",
             "--checkpoint", str(tmp_path / "ckpt")]
        )
        assert code == EXIT_TIMEOUT
        assert "resume" in _one_error_line(capsys)

    def test_interrupted_run_resumes_to_identical_pairs(
        self, sample_file, tmp_path, capsys, monkeypatch
    ):
        """The CLI acceptance path: killed run exits 130 with progress
        saved; rerunning the same command completes with the exact pair
        set of an uninterrupted run."""
        args = [
            "join", "-i", sample_file, "--predicate", "jaccard", "-t", "0.8",
            "--checkpoint", str(tmp_path / "ckpt"), "--checkpoint-interval", "2",
        ]
        assert main(list(args)) == 0
        truth = capsys.readouterr().out
        assert main(list(args)) == 0  # checkpoint was cleared; reruns fine
        capsys.readouterr()

        # Simulate Ctrl-C three records in: the CLI's own token, wired
        # to SIGINT, is replaced by a countdown that trips mid-scan.
        monkeypatch.setattr(
            cli, "CancellationToken", lambda: CountdownCancellation(after_checks=3)
        )
        code = main(list(args))
        assert code == EXIT_INTERRUPTED
        captured = capsys.readouterr()
        assert "rerun the same command to resume" in captured.err
        monkeypatch.undo()

        assert main(list(args)) == 0
        assert capsys.readouterr().out == truth

    def test_memory_budget_degradation_is_reported(self, sample_file, capsys):
        code = main(
            ["join", "-i", sample_file, "-t", "0.5", "--memory-budget", "3"]
        )
        assert code == 0
        assert "degraded" in capsys.readouterr().err

    def test_double_sigint_during_flush_exits_130_checkpoint_intact(
        self, sample_file, tmp_path, capsys, monkeypatch
    ):
        """Regression: a second Ctrl-C landing while the interrupt flush
        is writing the checkpoint must neither corrupt the checkpoint
        directory nor change the exit status.

        Both SIGINTs are real signals (``os.kill``), delivered at exact
        deterministic points: the first at the third progress tick
        (operator interrupts mid-scan), the second from inside the
        checkpoint write it triggers (operator hammering Ctrl-C during
        the flush). The ``_sigint_cancels`` handler must absorb both —
        default behaviour would raise KeyboardInterrupt mid-write and
        tear the flush.
        """
        ckpt = tmp_path / "ckpt"
        args = [
            "join", "-i", sample_file, "--predicate", "jaccard", "-t", "0.8",
            "--checkpoint", str(ckpt), "--checkpoint-interval", "1000",
        ]
        assert main(list(args)) == 0
        truth = capsys.readouterr().out

        real_tick = JoinContext.tick
        ticks = {"n": 0}

        def tick_firing_sigint(self, counters, check_memory=True):
            ticks["n"] += 1
            if ticks["n"] == 3:
                os.kill(os.getpid(), signal.SIGINT)
            return real_tick(self, counters, check_memory=check_memory)

        real_write = JoinCheckpointer.write
        writes = {"n": 0}

        def write_under_sigint(self, *wargs, **wkwargs):
            writes["n"] += 1
            os.kill(os.getpid(), signal.SIGINT)
            return real_write(self, *wargs, **wkwargs)

        monkeypatch.setattr(JoinContext, "tick", tick_firing_sigint)
        monkeypatch.setattr(JoinCheckpointer, "write", write_under_sigint)
        code = main(list(args))
        assert code == EXIT_INTERRUPTED
        assert "rerun the same command to resume" in capsys.readouterr().err
        # Interval 1000 >> 5 records: the only write was the interrupt
        # flush, and the second SIGINT did not abort it.
        assert writes["n"] == 1
        monkeypatch.undo()

        # No torn temp files, and the checkpoint is genuinely loadable:
        # the resumed run completes with the uninterrupted pair set.
        assert [p.name for p in ckpt.iterdir() if p.name.endswith(".tmp")] == []
        assert main(list(args)) == 0
        assert capsys.readouterr().out == truth


class TestMergeBackendFlag:
    def test_backend_choices_rejected(self, sample_file, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["join", "-i", sample_file, "-t", "0.8",
                 "--merge-backend", "quantum"]
            )

    @pytest.mark.parametrize("backend", ["auto", "heap", "accumulator"])
    def test_join_output_identical_across_backends(
        self, sample_file, capsys, backend
    ):
        code = main(
            ["join", "-i", sample_file, "--predicate", "jaccard", "-t", "0.8",
             "--merge-backend", backend]
        )
        assert code == 0
        out = capsys.readouterr().out.strip().splitlines()
        pairs = {tuple(line.split("\t")[:2]) for line in out}
        assert pairs == {("0", "1"), ("2", "3")}

    def test_editjoin_accepts_backend(self, sample_file, capsys):
        code = main(
            ["editjoin", "-i", sample_file, "-k", "2",
             "--merge-backend", "accumulator"]
        )
        assert code == 0


class TestIndexBackendFlag:
    def test_backend_choices_rejected(self, sample_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["join", "-i", sample_file, "-t", "0.8",
                 "--index-backend", "cloud"]
            )

    def test_mmap_join_identical_to_memory(self, sample_file, capsys):
        base = ["join", "-i", sample_file, "--predicate", "jaccard",
                "-t", "0.8", "--algorithm", "probe-count-optmerge"]
        assert main(base) == 0
        expected = capsys.readouterr().out
        assert main(base + ["--index-backend", "mmap"]) == 0
        assert capsys.readouterr().out == expected

    def test_index_path_keeps_the_file(self, sample_file, tmp_path, capsys):
        path = str(tmp_path / "cli.rpmx")
        code = main(
            ["join", "-i", sample_file, "--predicate", "jaccard", "-t", "0.8",
             "--algorithm", "probe-count-optmerge",
             "--index-backend", "mmap", "--index-path", path]
        )
        assert code == 0
        assert os.path.exists(path)

    def test_unsupported_algorithm_is_usage_error(self, sample_file, capsys):
        code = main(
            ["join", "-i", sample_file, "--predicate", "jaccard", "-t", "0.8",
             "--algorithm", "probe-count-online", "--index-backend", "mmap"]
        )
        assert code == EXIT_USAGE
        assert "does not support index_backend" in capsys.readouterr().err

    def test_unsupported_algorithm_with_workers_is_usage_error(
        self, sample_file, capsys
    ):
        code = main(
            ["join", "-i", sample_file, "--predicate", "jaccard", "-t", "0.8",
             "--algorithm", "probe-cluster", "--index-backend", "mmap",
             "--workers", "2"]
        )
        assert code == EXIT_USAGE
        err = capsys.readouterr().err
        assert "does not support index_backend" in err
        assert "crashed" not in err

    def test_index_path_rejected_with_workers(self, sample_file, tmp_path, capsys):
        code = main(
            ["join", "-i", sample_file, "--predicate", "jaccard", "-t", "0.8",
             "--algorithm", "probe-count-optmerge", "--index-backend", "mmap",
             "--index-path", str(tmp_path / "x.rpmx"), "--workers", "2"]
        )
        assert code == EXIT_USAGE
        assert "--workers" in capsys.readouterr().err

    def test_parallel_mmap_identical_to_serial(self, sample_file, capsys):
        base = ["join", "-i", sample_file, "--predicate", "jaccard",
                "-t", "0.8", "--algorithm", "probe-count-optmerge"]
        assert main(base) == 0
        expected = capsys.readouterr().out
        assert main(base + ["--index-backend", "mmap", "--workers", "2"]) == 0
        assert capsys.readouterr().out == expected
