"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

SAMPLE = """efficient set joins on similarity predicates
set joins on similarity predicates efficient
gardening content totally different
totally different gardening content
nothing like the others here at all
"""


@pytest.fixture
def sample_file(tmp_path):
    path = tmp_path / "records.txt"
    path.write_text(SAMPLE)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_join_requires_threshold(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["join", "-i", "x.txt"])


class TestJoinCommand:
    def test_jaccard_join(self, sample_file, capsys):
        code = main(["join", "-i", sample_file, "--predicate", "jaccard", "-t", "0.8"])
        assert code == 0
        out = capsys.readouterr().out.strip().splitlines()
        pairs = {tuple(line.split("\t")[:2]) for line in out}
        assert ("0", "1") in pairs
        assert ("2", "3") in pairs
        assert len(pairs) == 2

    def test_overlap_join_with_algorithm(self, sample_file, capsys):
        code = main(
            ["join", "-i", sample_file, "--predicate", "overlap", "-t", "4",
             "--algorithm", "probe-count-optmerge"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "0\t1\t" in out

    def test_3gram_tokenizer(self, sample_file, capsys):
        code = main(
            ["join", "-i", sample_file, "--tokenizer", "3grams",
             "--predicate", "jaccard", "-t", "0.7"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "0\t1\t" in out


class TestDedupeCommand:
    def test_groups_printed(self, sample_file, capsys):
        code = main(["dedupe", "-i", sample_file, "--predicate", "jaccard", "-t", "0.8"])
        assert code == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert out == ["0\t1", "2\t3"]


class TestEditJoinCommand:
    def test_editjoin(self, tmp_path, capsys):
        path = tmp_path / "names.txt"
        path.write_text("sunita sarawagi\nsunita sarawagy\nalok kirpal\n")
        code = main(["editjoin", "-i", str(path), "-k", "1"])
        assert code == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert out == ["0\t1\t1"]


class TestStatsCommand:
    def test_stats(self, sample_file, capsys):
        code = main(["stats", "-i", sample_file])
        assert code == 0
        out = capsys.readouterr().out
        assert "records\t5" in out
        assert "avg_set_size" in out
