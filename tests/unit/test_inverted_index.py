"""Unit tests for the scored inverted index."""

import math

import pytest

from repro.core.inverted_index import PostingList, ScoredInvertedIndex
from repro.utils.counters import CostCounters


class TestPostingList:
    def test_append_keeps_order_and_max(self):
        plist = PostingList()
        plist.append(1, 0.5)
        plist.append(4, 2.0)
        plist.append(9, 1.0)
        assert list(plist.ids) == [1, 4, 9]
        assert plist.max_score == 2.0

    def test_append_rejects_out_of_order(self):
        plist = PostingList()
        plist.append(5, 1.0)
        with pytest.raises(ValueError):
            plist.append(5, 1.0)
        with pytest.raises(ValueError):
            plist.append(3, 1.0)

    def test_insert_sorted_middle(self):
        plist = PostingList()
        plist.append(1, 1.0)
        plist.append(9, 1.0)
        plist.insert_sorted(5, 3.0)
        assert list(plist.ids) == [1, 5, 9]
        assert list(plist.scores) == [1.0, 3.0, 1.0]
        assert plist.max_score == 3.0

    def test_insert_sorted_existing_raises_score(self):
        plist = PostingList()
        plist.append(5, 1.0)
        plist.insert_sorted(5, 2.0)
        assert list(plist.ids) == [5]
        assert list(plist.scores) == [2.0]

    def test_insert_sorted_existing_never_lowers_score(self):
        plist = PostingList()
        plist.append(5, 2.0)
        plist.insert_sorted(5, 1.0)
        assert list(plist.scores) == [2.0]


class TestScoredInvertedIndex:
    def test_insert_builds_sorted_lists(self):
        index = ScoredInvertedIndex()
        index.insert(0, (1, 2), (1.0, 1.0), norm=2.0)
        index.insert(1, (2, 3), (1.0, 1.0), norm=2.0)
        assert list(index.get(2).ids) == [0, 1]
        assert list(index.get(1).ids) == [0]
        assert list(index.get(3).ids) == [1]

    def test_min_norm_tracks_minimum(self):
        index = ScoredInvertedIndex()
        assert index.min_norm == math.inf
        index.insert(0, (1,), (1.0,), norm=5.0)
        index.insert(1, (1,), (1.0,), norm=3.0)
        index.insert(2, (1,), (1.0,), norm=9.0)
        assert index.min_norm == 3.0

    def test_entry_counting(self):
        index = ScoredInvertedIndex()
        counters = CostCounters()
        index.insert(0, (1, 2, 3), (1.0,) * 3, norm=3.0, counters=counters)
        assert index.n_entries == 3
        assert index.n_entities == 1
        assert counters.index_entries == 3

    def test_probe_lists_skips_missing_and_zero_scores(self):
        index = ScoredInvertedIndex()
        index.insert(0, (1, 2), (1.0, 1.0), norm=2.0)
        lists = index.probe_lists((1, 5, 2), (1.0, 1.0, 0.0))
        assert len(lists) == 1
        assert list(lists[0][0].ids) == [0]

    def test_add_entity_tokens_appends_new_words(self):
        index = ScoredInvertedIndex()
        index.insert(0, (1,), (1.0,), norm=1.0)
        index.add_entity_tokens(0, (2,), (1.0,))
        assert list(index.get(2).ids) == [0]
        assert index.n_entries == 2

    def test_add_entity_tokens_raises_score_of_tail_entity(self):
        index = ScoredInvertedIndex()
        index.insert(0, (1,), (1.0,), norm=1.0)
        index.add_entity_tokens(0, (1,), (4.0,))
        assert list(index.get(1).scores) == [4.0]
        assert index.n_entries == 1

    def test_get_or_create(self):
        index = ScoredInvertedIndex()
        plist = index.get_or_create(7)
        assert len(plist) == 0
        assert index.get_or_create(7) is plist

    def test_len_counts_distinct_words(self):
        index = ScoredInvertedIndex()
        index.insert(0, (1, 2), (1.0, 1.0), norm=2.0)
        index.insert(1, (2,), (1.0,), norm=1.0)
        assert len(index) == 2
        assert 1 in index
        assert 9 not in index


class TestSealedPostings:
    def test_seal_rejects_append_and_insert(self):
        plist = PostingList()
        plist.append(1, 1.0)
        plist.seal()
        assert plist.sealed
        with pytest.raises(ValueError):
            plist.append(2, 1.0)
        with pytest.raises(ValueError):
            plist.insert_sorted(0, 1.0)

    def test_index_seal_freezes_every_list(self):
        index = ScoredInvertedIndex()
        index.insert(0, (1, 2), (1.0, 1.0), norm=2.0)
        assert index.seal() is index
        with pytest.raises(ValueError):
            index.get(1).append(5, 1.0)

    def test_sealed_lists_still_readable(self):
        index = ScoredInvertedIndex()
        index.insert(0, (1,), (1.0,), norm=1.0)
        index.seal()
        lists = index.probe_lists((1,), (1.0,))
        assert list(lists[0][0].ids) == [0]


class TestNEntriesContract:
    def test_insert_sorted_reports_new_vs_reused(self):
        plist = PostingList()
        assert plist.insert_sorted(5, 1.0) is True
        assert plist.insert_sorted(5, 2.0) is False  # score raise, no new slot
        assert plist.insert_sorted(2, 1.0) is True

    def test_audit_passes_on_consistent_index(self):
        index = ScoredInvertedIndex()
        index.insert(0, (1, 2), (1.0, 1.0), norm=2.0)
        index.insert(1, (2,), (1.0,), norm=1.0)
        assert index.audit_n_entries() == 3

    def test_audit_catches_drift(self):
        index = ScoredInvertedIndex()
        index.insert(0, (1,), (1.0,), norm=1.0)
        # A caller that mutates lists via get_or_create without keeping
        # its side of the bookkeeping bargain is exactly what the audit
        # exists to catch.
        index.get_or_create(9).insert_sorted(0, 1.0)
        with pytest.raises(AssertionError):
            index.audit_n_entries()
