"""QueryCache semantics + IndexServer cache/batch integration."""

import threading

import pytest

from repro import OverlapPredicate
from repro.core.service import SimilarityIndex
from repro.serving import IndexServer, QueryCache
from repro.text.tokenizers import tokenize_words

WAIT = 10.0

TEXTS = [
    "efficient set joins on similarity predicates",
    "set joins with similarity predicates made efficient",
    "completely different words entirely",
    "probe count optimized merge joins",
]


def _index(**kwargs) -> SimilarityIndex:
    index = SimilarityIndex(OverlapPredicate(2), tokenizer=tokenize_words, **kwargs)
    for text in TEXTS:
        index.add(text)
    return index


class TestQueryCache:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            QueryCache(0)

    def test_key_for(self):
        assert QueryCache.key_for("a b") == ("text", "a b")
        assert QueryCache.key_for(["a", "b"]) == ("tokens", ("a", "b"))
        assert QueryCache.key_for(7) is None  # not iterable: uncacheable

    def test_hit_after_store(self):
        cache = QueryCache(4)
        key = QueryCache.key_for("q")
        assert cache.lookup(key, 1) == (False, None)
        cache.store(key, 1, ["result"])
        assert cache.lookup(key, 1) == (True, ["result"])
        stats = cache.stats()
        assert (stats["hits"], stats["misses"]) == (1, 1)

    def test_lru_eviction_order(self):
        cache = QueryCache(2)
        cache.lookup(QueryCache.key_for("a"), 0)  # pin generation 0
        for name in ("a", "b"):
            cache.store(QueryCache.key_for(name), 0, name)
        # Touch "a" so "b" becomes least recently used, then overflow.
        assert cache.lookup(QueryCache.key_for("a"), 0)[0]
        cache.store(QueryCache.key_for("c"), 0, "c")
        assert cache.lookup(QueryCache.key_for("b"), 0) == (False, None)
        assert cache.lookup(QueryCache.key_for("a"), 0) == (True, "a")
        assert cache.stats()["size"] == 2

    def test_generation_change_flushes(self):
        cache = QueryCache(4)
        cache.lookup(QueryCache.key_for("q"), 1)  # pin generation 1
        cache.store(QueryCache.key_for("q"), 1, "old")
        assert cache.lookup(QueryCache.key_for("q"), 2) == (False, None)
        assert cache.stats()["invalidations"] == 1
        # The flushed entry must not resurface at the old generation
        # either: the cache now tracks generation 2.
        assert cache.lookup(QueryCache.key_for("q"), 2) == (False, None)

    def test_stale_store_dropped(self):
        cache = QueryCache(4)
        cache.lookup(QueryCache.key_for("x"), 5)  # pin generation 5
        cache.store(QueryCache.key_for("q"), 4, "stale")
        assert cache.lookup(QueryCache.key_for("q"), 5) == (False, None)


class TestIndexGeneration:
    def test_add_and_rebind_bump(self):
        index = _index()
        before = index.generation
        index.add("one more record here")
        assert index.generation == before + 1
        index.rebind()
        assert index.generation == before + 2


class TestServerCache:
    def _serve(self, **kwargs):
        return IndexServer(_index(), workers=2, **kwargs).start()

    def test_repeat_query_hits_cache(self):
        server = self._serve(query_cache=8)
        try:
            first = server.query(TEXTS[0], timeout=WAIT)
            second = server.query(TEXTS[0], timeout=WAIT)
            assert [p.rid_b for p in second] == [p.rid_b for p in first]
            stats = server.health()["cache"]
            assert stats["hits"] == 1 and stats["misses"] == 1
        finally:
            server.drain()

    def test_mutation_invalidates(self):
        server = self._serve(query_cache=8)
        try:
            before = server.query(TEXTS[0], timeout=WAIT)
            server.index.add("efficient set joins appended later")
            after = server.query(TEXTS[0], timeout=WAIT)
            # The cached pre-add result must not be served back.
            assert len(after) == len(before) + 1
            assert server.health()["cache"]["hits"] == 0
        finally:
            server.drain()

    def test_cache_off_health_is_none(self):
        server = self._serve()
        try:
            server.query(TEXTS[0], timeout=WAIT)
            assert server.health()["cache"] is None
        finally:
            server.drain()


class TestConcurrentInvalidation:
    """Generation invalidation under racing add()/query() traffic.

    The corpus only ever *gains* matching records, so any correctly
    invalidated cache must serve each reader a non-decreasing match
    count — a stale hit after an add would show up as a decrease.
    """

    N_READERS = 4
    N_ADDS = 30
    PROBE = "efficient set joins on similarity predicates"

    def test_readers_never_observe_stale_hits(self):
        server = IndexServer(_index(), workers=4, query_cache=16).start()
        baseline = len(server.query(self.PROBE, timeout=WAIT))
        stop = threading.Event()
        errors: list[Exception] = []
        observed: list[list[int]] = [[] for _ in range(self.N_READERS)]

        def reader(slot: int) -> None:
            try:
                while not stop.is_set():
                    observed[slot].append(
                        len(server.query(self.PROBE, timeout=WAIT))
                    )
            except Exception as exc:  # noqa: BLE001 — fail the test
                errors.append(exc)

        threads = [
            threading.Thread(target=reader, args=(slot,), daemon=True)
            for slot in range(self.N_READERS)
        ]
        try:
            for thread in threads:
                thread.start()
            for i in range(self.N_ADDS):
                server.index.add(f"efficient set joins batch {i}")
        finally:
            stop.set()
            for thread in threads:
                thread.join(WAIT)
                assert not thread.is_alive(), "reader deadlocked"
        try:
            assert errors == []
            for lengths in observed:
                assert lengths == sorted(lengths), "match count went backwards"
            # After the writer is done, the cache must not pin the past.
            final = len(server.query(self.PROBE, timeout=WAIT))
            assert final == baseline + self.N_ADDS
            assert server.health()["cache"]["invalidations"] > 0
        finally:
            server.drain(timeout=WAIT)


class TestServerBatch:
    def test_batch_matches_singletons(self):
        server = IndexServer(_index(), workers=2).start()
        try:
            singles = [server.query(t, timeout=WAIT) for t in TEXTS]
            batch = server.query_batch(TEXTS, timeout=WAIT)
            assert [
                [(p.rid_b, round(p.similarity, 9)) for p in row] for row in batch
            ] == [
                [(p.rid_b, round(p.similarity, 9)) for p in row] for row in singles
            ]
        finally:
            server.drain()

    def test_batch_uses_cache_for_repeats(self):
        server = IndexServer(_index(), workers=2, query_cache=8).start()
        try:
            server.query(TEXTS[0], timeout=WAIT)
            batch = server.query_batch([TEXTS[0], TEXTS[2]], timeout=WAIT)
            assert len(batch) == 2
            stats = server.health()["cache"]
            assert stats["hits"] == 1  # TEXTS[0] reused, TEXTS[2] computed
            # A fully-cached batch short-circuits the index entirely.
            again = server.query_batch([TEXTS[0], TEXTS[2]], timeout=WAIT)
            assert [
                [p.rid_b for p in row] for row in again
            ] == [[p.rid_b for p in row] for row in batch]
            assert server.health()["cache"]["hits"] == 3
        finally:
            server.drain()

    def test_empty_batch(self):
        server = IndexServer(_index(), workers=1).start()
        try:
            assert server.query_batch([], timeout=WAIT) == []
        finally:
            server.drain()


class TestIndexQueryBatch:
    def test_matches_singleton_queries(self):
        index = _index()
        singles = [index.query(t) for t in TEXTS]
        batch = index.query_batch(TEXTS)
        assert [
            [(p.rid_b, round(p.similarity, 9)) for p in row] for row in batch
        ] == [
            [(p.rid_b, round(p.similarity, 9)) for p in row] for row in singles
        ]

    def test_bitmap_filtered_index_same_answers(self):
        plain = _index()
        filtered = _index(bitmap_filter=True)
        assert [
            [p.rid_b for p in row] for row in filtered.query_batch(TEXTS)
        ] == [[p.rid_b for p in row] for row in plain.query_batch(TEXTS)]
        snapshot = filtered.counters_snapshot()
        assert snapshot["bitmap_checks"] > 0
