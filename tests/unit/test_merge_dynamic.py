"""Unit tests for the dynamic-threshold merge (§4.1.1)."""

import random

from repro.core.heap_merge import heap_merge
from repro.core.inverted_index import PostingList
from repro.core.merge_dynamic import merge_dynamic
from repro.utils.counters import CostCounters


def make_list(entries):
    plist = PostingList()
    for entity_id, score in entries:
        plist.append(entity_id, score)
    return plist


def unit_lists(id_lists):
    return [(make_list([(i, 1.0) for i in ids]), 1.0) for ids in id_lists]


def collect_all(lists, initial, cap):
    """Run merge_dynamic without raising the threshold."""
    got = []

    def on_candidate(entity, weight):
        got.append((entity, weight))
        return initial

    merge_dynamic(lists, initial, cap, on_candidate, CostCounters())
    return got


class TestMergeDynamicStatic:
    """With a constant threshold it must equal the plain heap merge."""

    def test_matches_heap_merge(self):
        lists = unit_lists([[0, 1, 2], [1, 2], [2, 3]])
        expected = heap_merge(lists, lambda _s: 2.0, CostCounters())
        got = collect_all(lists, 2.0, 2.0)
        assert got == expected

    def test_randomized_equivalence(self):
        rng = random.Random(3)
        for trial in range(30):
            lists = []
            for _ in range(rng.randint(1, 7)):
                ids = sorted(rng.sample(range(30), rng.randint(1, 20)))
                lists.append((make_list([(i, 1.0) for i in ids]), 1.0))
            threshold = rng.uniform(1.0, 4.0)
            expected = heap_merge(lists, lambda _s: threshold, CostCounters())
            got = collect_all(lists, threshold, threshold)
            assert got == expected, f"trial {trial}"


class TestMergeDynamicRaising:
    def test_all_join_candidates_survive_raises(self):
        """Raising toward the cap never loses entities at/above the cap."""
        rng = random.Random(4)
        for trial in range(30):
            lists = []
            for _ in range(rng.randint(2, 7)):
                ids = sorted(rng.sample(range(30), rng.randint(2, 20)))
                lists.append((make_list([(i, 1.0) for i in ids]), 1.0))
            cap = rng.uniform(1.5, 4.0)
            initial = cap * 0.2
            truth = {
                entity: weight
                for entity, weight in heap_merge(lists, lambda _s: 0.5, CostCounters())
                if weight >= cap - 1e-9
            }
            reported = {}

            def on_candidate(entity, weight, _state={"threshold": initial}):
                reported[entity] = weight
                # aggressive raise: average toward the cap
                _state["threshold"] = (_state["threshold"] + weight) / 2
                return _state["threshold"]

            merge_dynamic(lists, initial, cap, on_candidate, CostCounters())
            for entity, weight in truth.items():
                assert entity in reported, f"trial {trial}: lost join candidate {entity}"
                assert abs(reported[entity] - weight) < 1e-9, (
                    f"trial {trial}: wrong weight for {entity}"
                )

    def test_reported_weights_are_exact_for_candidates(self):
        # Demoted lists must still contribute via binary search.
        lists = unit_lists([
            list(range(20)),          # long list -> demotion target
            [5, 10, 15],
            [5, 10],
            [10],
        ])
        reported = {}

        def on_candidate(entity, weight):
            reported[entity] = weight
            return 2.0  # raise immediately so the long list demotes

        merge_dynamic(lists, 1.0, 3.0, on_candidate, CostCounters())
        # Entity 10 appears in all four lists.
        assert reported.get(10) == 4.0

    def test_threshold_never_lowered(self):
        lists = unit_lists([[0, 1], [1, 2], [2, 3]])
        seen_weights = []

        def on_candidate(entity, weight):
            seen_weights.append(weight)
            return 0.0  # attempt to lower; must be clamped

        merge_dynamic(lists, 1.5, 2.0, on_candidate, CostCounters())
        # Candidates below 1.5 never reported despite the lower return.
        assert all(w >= 1.5 - 1e-9 for w in seen_weights)

    def test_empty_lists(self):
        merge_dynamic([], 1.0, 2.0, lambda e, w: 1.0, CostCounters())
