"""IndexServer: admission control, deadlines, retries, breaker, drain."""

import threading

import pytest

from repro import OverlapPredicate
from repro.core.service import SimilarityIndex
from repro.runtime.errors import CircuitOpen, JoinTimeout, ServerOverloaded
from repro.runtime.faults import FakeClock
from repro.serving import CircuitBreaker, IndexServer, RetryPolicy
from repro.serving.breaker import CLOSED as BREAKER_CLOSED
from repro.serving.server import CLOSED, SERVING
from repro.text.tokenizers import tokenize_words

#: Bound for operations that should be immediate; only hit on deadlock.
WAIT = 10.0


def _real_index() -> SimilarityIndex:
    index = SimilarityIndex(OverlapPredicate(2), tokenizer=tokenize_words)
    index.add("efficient set joins on similarity predicates")
    index.add("completely different words entirely")
    return index


class _ScriptedIndex:
    """Index double whose ``query`` behaviour is scripted per call."""

    def __init__(self):
        self.gate: threading.Event | None = None
        self.started = threading.Semaphore(0)
        self.failures_left = 0
        self.exc = OSError("injected index failure")
        self.calls = 0
        self._lock = threading.Lock()

    def query(self, item, context=None):
        with self._lock:
            self.calls += 1
            failing = self.failures_left > 0
            if failing:
                self.failures_left -= 1
        self.started.release()
        if self.gate is not None:
            assert self.gate.wait(WAIT)
        if failing:
            raise self.exc
        if context is not None:
            context.start()
            from repro.utils.counters import CostCounters

            context.tick(CostCounters(), check_memory=False)
        return [item]

    def __len__(self):
        return 0

    def counters_snapshot(self):
        return {"unknown_query_tokens": 0}


class TestEndToEnd:
    def test_server_results_match_direct_queries(self):
        index = _real_index()
        with IndexServer(index, workers=3) as server:
            queries = ["set joins similarity", "different words entirely", "zzz qqq"]
            futures = [server.submit(q) for q in queries]
            for query, future in zip(queries, futures):
                assert future.result(timeout=WAIT) == index.query(query)

    def test_sync_wrapper(self):
        with IndexServer(_real_index(), workers=1) as server:
            [match] = server.query("set joins similarity", timeout=WAIT)
            assert match.rid_a == 0

    def test_submit_before_start_and_after_drain_sheds(self):
        server = IndexServer(_real_index())
        with pytest.raises(ServerOverloaded, match="not started"):
            server.submit("set joins similarity")
        server.start()
        server.drain(timeout=WAIT)
        assert server.state == CLOSED
        with pytest.raises(ServerOverloaded):
            server.submit("set joins similarity")

    def test_deadline_and_context_are_mutually_exclusive(self):
        from repro.runtime.context import JoinContext

        with IndexServer(_real_index()) as server:
            with pytest.raises(ValueError):
                server.submit("x", deadline=1.0, context=JoinContext())


class TestOverload:
    def test_full_queue_sheds_with_typed_error(self):
        scripted = _ScriptedIndex()
        scripted.gate = threading.Event()
        server = IndexServer(scripted, workers=1, queue_limit=2).start()
        try:
            blocked = server.submit("a")  # occupies the worker
            assert scripted.started.acquire(timeout=WAIT)
            queued = [server.submit("b"), server.submit("c")]  # fills the queue
            with pytest.raises(ServerOverloaded) as err:
                server.submit("d")
            assert err.value.queue_limit == 2
            assert server.health()["shed"] == 1
            scripted.gate.set()
            for future in [blocked] + queued:
                future.result(timeout=WAIT)
        finally:
            scripted.gate.set()
            server.drain(timeout=WAIT)

    def test_shed_request_never_reaches_the_index(self):
        scripted = _ScriptedIndex()
        scripted.gate = threading.Event()
        server = IndexServer(scripted, workers=1, queue_limit=1).start()
        try:
            server.submit("a")
            assert scripted.started.acquire(timeout=WAIT)
            server.submit("b")
            with pytest.raises(ServerOverloaded):
                server.submit("c")
            scripted.gate.set()
            server.drain(timeout=WAIT)
            assert scripted.calls == 2  # "c" was shed at admission
        finally:
            scripted.gate.set()
            server.drain(timeout=WAIT)


class TestDeadlines:
    def test_deadline_expired_while_queued_times_out_without_breaker_blame(self):
        clock = FakeClock()
        scripted = _ScriptedIndex()
        scripted.gate = threading.Event()
        breaker = CircuitBreaker(failure_threshold=1, clock=clock)
        server = IndexServer(
            scripted, workers=1, queue_limit=4, breaker=breaker, clock=clock
        ).start()
        try:
            server.submit("blocker")
            assert scripted.started.acquire(timeout=WAIT)
            doomed = server.submit("doomed", deadline=5.0)
            clock.advance(6.0)  # expires in the queue
            scripted.gate.set()
            with pytest.raises(JoinTimeout):
                doomed.result(timeout=WAIT)
            # Queue-expiry is overload, not dependency failure: the
            # breaker (threshold 1!) must still be closed.
            assert breaker.state == BREAKER_CLOSED
            assert server.health()["failed"] == 1
        finally:
            scripted.gate.set()
            server.drain(timeout=WAIT)

    def test_default_deadline_applies(self):
        clock = FakeClock()
        scripted = _ScriptedIndex()
        scripted.gate = threading.Event()
        server = IndexServer(
            scripted, workers=1, queue_limit=4, default_deadline=2.0, clock=clock
        ).start()
        try:
            server.submit("blocker")
            assert scripted.started.acquire(timeout=WAIT)
            doomed = server.submit("doomed")
            clock.advance(3.0)
            scripted.gate.set()
            with pytest.raises(JoinTimeout):
                doomed.result(timeout=WAIT)
        finally:
            scripted.gate.set()
            server.drain(timeout=WAIT)


class TestRetries:
    def test_transient_failure_retried_to_success(self):
        scripted = _ScriptedIndex()
        scripted.failures_left = 2
        policy = RetryPolicy(max_attempts=3, sleep=lambda s: None)
        with IndexServer(scripted, workers=1, retry_policy=policy) as server:
            assert server.submit("q").result(timeout=WAIT) == ["q"]
            health = server.health()
        assert scripted.calls == 3
        assert health["retried"] == 2
        assert health["completed"] == 1

    def test_exhausted_retries_fail_the_request(self):
        scripted = _ScriptedIndex()
        scripted.failures_left = 99
        policy = RetryPolicy(max_attempts=2, sleep=lambda s: None)
        with IndexServer(scripted, workers=1, retry_policy=policy) as server:
            with pytest.raises(OSError):
                server.submit("q").result(timeout=WAIT)
            assert server.health()["failed"] == 1


class TestBreakerIntegration:
    def test_consecutive_failures_trip_then_fail_fast(self):
        clock = FakeClock()
        scripted = _ScriptedIndex()
        scripted.failures_left = 2
        breaker = CircuitBreaker(
            failure_threshold=2, cooldown_seconds=30.0, clock=clock
        )
        with IndexServer(scripted, workers=1, breaker=breaker, clock=clock) as server:
            for _ in range(2):
                with pytest.raises(OSError):
                    server.submit("q").result(timeout=WAIT)
            # Tripped: the next request fails fast, never touching the index.
            with pytest.raises(CircuitOpen):
                server.submit("q").result(timeout=WAIT)
            assert scripted.calls == 2
            # Cooldown elapses; the half-open trial succeeds and closes.
            clock.advance(30.0)
            assert server.submit("q").result(timeout=WAIT) == ["q"]
            assert server.health()["breaker"] == {
                "state": "closed",
                "times_opened": 1,
            }


class TestHealth:
    def test_reports_all_operational_fields(self):
        with IndexServer(_real_index(), workers=2) as server:
            server.query("set joins similarity", timeout=WAIT)
            health = server.health()
        assert health["state"] == SERVING  # snapshot taken before drain
        assert health["workers"] == 2
        assert health["queue_depth"] == 0
        assert health["in_flight"] == 0
        assert health["completed"] == 1
        assert health["breaker"] is None
        assert health["latency"]["count"] == 1
        assert health["latency"]["p50_seconds"] is not None
        assert health["latency"]["p99_seconds"] is not None
        assert health["index"]["records"] == 2
        assert "unknown_query_tokens" in health["index"]["counters"]
        assert health["pool"] == {
            "mode": "thread",
            "busy": 0,
            "total": 2,
            "saturation": 0.0,
        }

    def test_pool_saturation_tracks_busy_workers(self):
        scripted = _ScriptedIndex()
        scripted.gate = threading.Event()
        server = IndexServer(scripted, workers=2, queue_limit=8).start()
        try:
            idle = server.health()["pool"]
            assert (idle["busy"], idle["total"], idle["saturation"]) == (0, 2, 0.0)
            futures = [server.submit(str(i)) for i in range(2)]
            for _ in futures:
                assert scripted.started.acquire(timeout=WAIT)
            saturated = server.health()["pool"]
            assert (saturated["busy"], saturated["total"]) == (2, 2)
            assert saturated["saturation"] == 1.0
            scripted.gate.set()
            for future in futures:
                future.result(timeout=WAIT)
        finally:
            scripted.gate.set()
            server.drain(timeout=WAIT)
        assert server.health()["pool"]["busy"] == 0


class TestProcessPool:
    def test_process_results_match_thread_results(self):
        index = _real_index()
        queries = ["set joins similarity", "different words entirely", "zzz qqq"]
        with IndexServer(index, workers=2, executor="process") as server:
            futures = [server.submit(q) for q in queries]
            for query, future in zip(queries, futures):
                assert future.result(timeout=WAIT) == index.query(query)
            health = server.health()
        assert health["pool"]["mode"] == "process"
        assert health["pool"]["total"] == 2
        assert health["completed"] == 3

    def test_process_pool_serves_startup_snapshot(self):
        # Fork shares the index as of start(); later adds are served by
        # the in-process index but not the forked pool — the documented
        # point-in-time semantics.
        index = _real_index()
        with IndexServer(index, workers=1, executor="process") as server:
            index.add("set joins similarity predicates appended later")
            matches = server.submit("set joins similarity").result(timeout=WAIT)
        rids = {pair.rid_a for pair in matches}
        assert 2 not in rids  # the post-start record is invisible to the pool

    def test_process_pool_deadline_enforced_at_dispatch(self):
        # The pool cannot run the injected-clock deadline inside the
        # child, so expiry is enforced at the dispatch boundary: either
        # before dispatch (expired while queued) or on the pool-result
        # wait. A microscopic real deadline exercises that boundary.
        with IndexServer(_real_index(), workers=1, executor="process") as server:
            future = server.submit("set joins similarity", deadline=0.000001)
            with pytest.raises(JoinTimeout):
                future.result(timeout=WAIT)
            assert server.health()["failed"] == 1

    def test_restart_after_drain_rebuilds_the_pool(self):
        server = IndexServer(_real_index(), workers=1, executor="process")
        server.start()
        assert server.submit("set joins similarity").result(timeout=WAIT)
        server.drain(timeout=WAIT)
        server.start()
        try:
            assert server.submit("set joins similarity").result(timeout=WAIT)
        finally:
            server.drain(timeout=WAIT)

    def test_rejects_unknown_executor(self):
        with pytest.raises(ValueError, match="executor"):
            IndexServer(_real_index(), executor="coroutine")


class TestDrain:
    def test_drain_completes_admitted_work(self):
        scripted = _ScriptedIndex()
        scripted.gate = threading.Event()
        server = IndexServer(scripted, workers=1, queue_limit=8).start()
        futures = [server.submit(str(i)) for i in range(4)]
        assert scripted.started.acquire(timeout=WAIT)

        release = threading.Timer(0.1, scripted.gate.set)
        release.start()
        try:
            assert server.drain(timeout=WAIT) is True
        finally:
            release.cancel()
        assert server.state == CLOSED
        assert [f.result(timeout=0) for f in futures] == [["0"], ["1"], ["2"], ["3"]]

    def test_timed_out_drain_fails_leftovers_and_still_closes(self):
        scripted = _ScriptedIndex()
        scripted.gate = threading.Event()  # never set: worker stays wedged
        server = IndexServer(scripted, workers=1, queue_limit=8).start()
        wedged = server.submit("wedged")
        assert scripted.started.acquire(timeout=WAIT)
        queued = server.submit("queued")
        assert server.drain(timeout=0.2) is False
        assert server.state == CLOSED
        # The queued request's caller is unblocked with a typed error...
        with pytest.raises(ServerOverloaded, match="draining"):
            queued.result(timeout=0)
        # ...and unwedging the worker lets the in-flight one finish.
        scripted.gate.set()
        assert wedged.result(timeout=WAIT) == ["wedged"]

    def test_double_drain_is_idempotent(self):
        server = IndexServer(_real_index()).start()
        assert server.drain(timeout=WAIT) is True
        assert server.drain(timeout=WAIT) is True

    def test_double_stop_is_idempotent(self):
        server = IndexServer(_real_index()).start()
        assert server.stop(timeout=WAIT) is True
        assert server.stop(timeout=WAIT) is True
        assert server.state == CLOSED

    def test_stop_of_never_started_server_is_noop(self):
        server = IndexServer(_real_index())
        assert server.stop(timeout=WAIT) is True
        assert server.state == CLOSED

    def test_stop_after_failed_start_is_noop_and_start_retryable(self):
        class _FlakyStart(IndexServer):
            fail_next = True

            def _on_start(self):
                if self.fail_next:
                    raise RuntimeError("executor refused to spawn")

        server = _FlakyStart(_real_index())
        with pytest.raises(RuntimeError, match="refused to spawn"):
            server.start()
        assert server.state == CLOSED
        # A failed start leaves nothing behind to tear down...
        assert server.stop(timeout=WAIT) is True
        # ...and the fixed configuration can start (and serve) again.
        server.fail_next = False
        server.start()
        try:
            assert server.query(
                "efficient set joins similarity", timeout=WAIT
            )
        finally:
            assert server.stop(timeout=WAIT) is True


class TestValidation:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            IndexServer(_real_index(), workers=0)
        with pytest.raises(ValueError):
            IndexServer(_real_index(), queue_limit=0)
