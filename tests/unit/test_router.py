"""ShardRouter: stable, deterministic, skew-robust rid -> shard hashing."""

import pytest

from repro.serving.router import ShardRouter


class TestDeterminism:
    def test_same_rid_same_shard_across_instances(self):
        first = ShardRouter(5)
        second = ShardRouter(5)
        assert [first.shard_of(rid) for rid in range(200)] == [
            second.shard_of(rid) for rid in range(200)
        ]

    def test_pinned_assignments_never_change(self):
        """The mapping is baked into shard ownership: a silent change to
        the mix would orphan every record, so pin concrete values."""
        router = ShardRouter(4)
        assert [router.shard_of(rid) for rid in range(8)] == [
            2, 1, 0, 3, 2, 1, 0, 3,
        ]

    def test_all_shards_in_range(self):
        for n in (1, 2, 3, 7, 16):
            router = ShardRouter(n)
            assert all(0 <= router.shard_of(rid) < n for rid in range(500))

    def test_single_shard_takes_everything(self):
        router = ShardRouter(1)
        assert {router.shard_of(rid) for rid in range(100)} == {0}


class TestSpread:
    def test_spread_counts_match_shard_of(self):
        router = ShardRouter(3)
        spread = router.spread(300)
        assert sum(spread) == 300
        recount = [0, 0, 0]
        for rid in range(300):
            recount[router.shard_of(rid)] += 1
        assert spread == recount

    @pytest.mark.parametrize("n_shards", [2, 3, 4, 7])
    def test_sequential_rids_do_not_skew(self, n_shards):
        """The whole point of hashing over range-splitting: a contiguous
        id range (bulk import, hot tenant) still spreads out."""
        spread = ShardRouter(n_shards).spread(10_000)
        expected = 10_000 / n_shards
        assert all(0.8 * expected <= count <= 1.2 * expected for count in spread)


class TestValidation:
    @pytest.mark.parametrize("n_shards", [0, -1])
    def test_rejects_bad_shard_counts(self, n_shards):
        with pytest.raises(ValueError):
            ShardRouter(n_shards)

    def test_repr(self):
        assert repr(ShardRouter(3)) == "ShardRouter(n_shards=3)"
