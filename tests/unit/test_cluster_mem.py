"""Unit tests for ClusterMem (§4, Algorithm 2)."""

import pytest

from repro import (
    ClusterMemJoin,
    Dataset,
    JaccardPredicate,
    MemoryBudget,
    NaiveJoin,
    OverlapPredicate,
)
from tests.conftest import random_dataset


class TestMemoryBudget:
    def test_positive_required(self):
        with pytest.raises(ValueError):
            MemoryBudget(0)

    def test_fraction_of_full(self):
        data = Dataset([(0, 1, 2), (3, 4)])
        budget = MemoryBudget.fraction_of_full(data, 0.5)
        assert budget.max_index_entries == 2

    def test_fraction_bounds(self):
        data = Dataset([(0, 1)])
        with pytest.raises(ValueError):
            MemoryBudget.fraction_of_full(data, 0.0)
        with pytest.raises(ValueError):
            MemoryBudget.fraction_of_full(data, 1.5)

    def test_fraction_floor_is_one(self):
        data = Dataset([(0,)])
        assert MemoryBudget.fraction_of_full(data, 0.01).max_index_entries == 1


class TestClusterMem:
    def test_basic_result(self, small_dataset):
        algorithm = ClusterMemJoin(MemoryBudget.fraction_of_full(small_dataset, 1.0))
        result = algorithm.join(small_dataset, OverlapPredicate(5))
        assert result.pair_set() == {(0, 1)}

    @pytest.mark.parametrize("fraction", [1.0, 0.5, 0.25, 0.1, 0.02])
    def test_equivalence_across_budgets(self, fraction):
        data = random_dataset(seed=13)
        predicate = OverlapPredicate(4)
        truth = NaiveJoin().join(data, predicate).pair_set()
        algorithm = ClusterMemJoin(MemoryBudget.fraction_of_full(data, fraction))
        assert algorithm.join(data, predicate).pair_set() == truth

    @pytest.mark.parametrize("sort", [False, True])
    def test_sort_option(self, sort):
        data = random_dataset(seed=14)
        predicate = OverlapPredicate(4)
        truth = NaiveJoin().join(data, predicate).pair_set()
        algorithm = ClusterMemJoin(
            MemoryBudget.fraction_of_full(data, 0.3), sort=sort
        )
        assert algorithm.join(data, predicate).pair_set() == truth

    def test_jaccard_equivalence(self):
        data = random_dataset(seed=15)
        predicate = JaccardPredicate(0.6)
        truth = NaiveJoin().join(data, predicate).pair_set()
        algorithm = ClusterMemJoin(MemoryBudget.fraction_of_full(data, 0.2))
        assert algorithm.join(data, predicate).pair_set() == truth

    def test_smaller_budget_means_more_batches(self):
        data = random_dataset(seed=16, n_base=100)
        predicate = OverlapPredicate(4)
        big = ClusterMemJoin(MemoryBudget.fraction_of_full(data, 1.0)).join(data, predicate)
        small = ClusterMemJoin(MemoryBudget.fraction_of_full(data, 0.05)).join(data, predicate)
        assert small.pair_set() == big.pair_set()
        assert small.counters.extra["batches"] >= big.counters.extra["batches"]

    def test_cluster_budget_recorded(self):
        data = random_dataset(seed=17)
        algorithm = ClusterMemJoin(MemoryBudget.fraction_of_full(data, 0.3))
        result = algorithm.join(data, OverlapPredicate(4))
        assert result.counters.extra["Ng"] >= 1
        assert result.counters.clusters_created <= result.counters.extra["Ng"]

    def test_disk_io_is_counted(self):
        data = random_dataset(seed=18)
        algorithm = ClusterMemJoin(MemoryBudget.fraction_of_full(data, 0.2))
        result = algorithm.join(data, OverlapPredicate(4))
        assert result.counters.disk_appends == len(data)
        assert result.counters.disk_reads >= len(data)

    def test_workdir_cleanup(self, tmp_path):
        data = random_dataset(seed=19, n_base=30)
        workdir = tmp_path / "scratch"
        workdir.mkdir()
        algorithm = ClusterMemJoin(
            MemoryBudget.fraction_of_full(data, 0.5), workdir=str(workdir)
        )
        algorithm.join(data, OverlapPredicate(4))
        # Caller-provided workdir is kept, but the temp files are removed.
        leftover = [p.name for p in workdir.iterdir() if not p.name.startswith(".")]
        assert leftover == []

    def test_empty_dataset(self):
        algorithm = ClusterMemJoin(MemoryBudget(10))
        assert algorithm.join(Dataset([]), OverlapPredicate(1)).pairs == []

    def test_phase1_index_within_budget_order(self):
        """The compressed index stays near the budget (soft bound)."""
        data = random_dataset(seed=20, n_base=120)
        budget = MemoryBudget.fraction_of_full(data, 0.1)
        algorithm = ClusterMemJoin(budget)
        result = algorithm.join(data, OverlapPredicate(4))
        # Soft check: compressed index is far below the full index size.
        assert (
            result.counters.extra["phase1_index_entries"]
            < data.total_word_occurrences()
        )
