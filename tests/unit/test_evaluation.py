"""Unit tests for match-quality evaluation."""

import pytest

from repro import Dataset, JaccardPredicate, MatchPair
from repro.evaluation import MatchQuality, pair_quality, threshold_sweep, true_pairs_of


class TestTruePairs:
    def test_groups_to_pairs(self):
        labels = [0, 0, 1, 0, 1, 2]
        assert true_pairs_of(labels) == {(0, 1), (0, 3), (1, 3), (2, 4)}

    def test_all_singletons(self):
        assert true_pairs_of([0, 1, 2]) == set()

    def test_empty(self):
        assert true_pairs_of([]) == set()


class TestMatchQuality:
    def test_perfect(self):
        quality = MatchQuality(true_positives=5, false_positives=0, false_negatives=0)
        assert quality.precision == 1.0
        assert quality.recall == 1.0
        assert quality.f1 == 1.0

    def test_precision_recall(self):
        quality = MatchQuality(true_positives=3, false_positives=1, false_negatives=3)
        assert quality.precision == pytest.approx(0.75)
        assert quality.recall == pytest.approx(0.5)
        assert quality.f1 == pytest.approx(0.6)

    def test_degenerate_empty(self):
        quality = MatchQuality(0, 0, 0)
        assert quality.precision == 1.0
        assert quality.recall == 1.0
        assert quality.f1 == 1.0

    def test_all_wrong(self):
        quality = MatchQuality(0, 4, 2)
        assert quality.precision == 0.0
        assert quality.recall == 0.0
        assert quality.f1 == 0.0


class TestPairQuality:
    LABELS = [0, 0, 1, 1, 2]

    def test_mixed_prediction(self):
        predicted = [(0, 1), (0, 2), MatchPair(2, 3)]
        quality = pair_quality(predicted, self.LABELS)
        assert quality.true_positives == 2
        assert quality.false_positives == 1
        assert quality.false_negatives == 0

    def test_orientation_normalized(self):
        quality = pair_quality([(1, 0)], self.LABELS)
        assert quality.true_positives == 1


class TestThresholdSweep:
    def test_recall_monotone_in_threshold(self):
        from repro.datagen import CitationGenerator
        from repro.text.tokenizers import tokenize_words

        records, labels = CitationGenerator(seed=5).generate_labeled(150)
        data = Dataset.from_texts([r.text() for r in records], tokenize_words)
        sweep = threshold_sweep(
            data, labels, JaccardPredicate, [0.9, 0.7, 0.5]
        )
        recalls = [quality.recall for _t, quality in sweep]
        assert recalls == sorted(recalls)  # lower threshold -> more recall

    def test_reasonable_quality_on_labeled_corpus(self):
        from repro.datagen import AddressGenerator
        from repro.text.tokenizers import tokenize_qgrams

        records, labels = AddressGenerator(seed=6, duplicate_fraction=0.3).generate_labeled(120)
        data = Dataset.from_texts([r.text() for r in records], tokenize_qgrams)
        [(threshold, quality)] = threshold_sweep(data, labels, JaccardPredicate, [0.75])
        assert quality.f1 > 0.5


class TestLabeledGenerators:
    def test_citation_labels_align(self):
        from repro.datagen import CitationGenerator

        records, labels = CitationGenerator(seed=7).generate_labeled(100)
        assert len(records) == len(labels) == 100
        # generate() returns the same records.
        assert [r.text() for r in CitationGenerator(seed=7).generate(100)] == [
            r.text() for r in records
        ]

    def test_address_labels_align(self):
        from repro.datagen import AddressGenerator

        records, labels = AddressGenerator(seed=8).generate_labeled(80)
        assert len(records) == len(labels) == 80

    def test_label_groups_are_contiguous_duplicates(self):
        from repro.datagen import CitationGenerator

        records, labels = CitationGenerator(seed=9, duplicate_fraction=0.6).generate_labeled(60)
        # members of one group share the venue (never perturbed)
        by_group: dict[int, list[int]] = {}
        for rid, label in enumerate(labels):
            by_group.setdefault(label, []).append(rid)
        multi = [members for members in by_group.values() if len(members) > 1]
        assert multi, "expected duplicate groups at this rate"
        for members in multi:
            venues = {records[rid].venue for rid in members}
            assert len(venues) == 1
