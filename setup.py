"""Setuptools shim.

Kept alongside pyproject.toml so the package installs in offline
environments whose setuptools predates bundled bdist_wheel (pip's PEP 660
editable build needs the `wheel` package there; `python setup.py develop`
does not).
"""

from setuptools import setup

setup()
