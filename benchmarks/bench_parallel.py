"""Parallel-join benchmark: serial vs sharded wall-clock + exactness.

Runs the pinned citation workload serially and under ``parallel_join``
with increasing worker counts, asserts the pair sets are identical, and
records wall-clock, speedup, and the machine-independent ``work``
counters into ``BENCH_parallel.json`` at the repo root.

Wall-clock numbers are machine-dependent by nature; the report embeds
the machine profile (cpu count, platform, python) so the perf
trajectory across commits is interpretable. Speedup requires physical
cores: on a single-core runner the sharded run pays the fork +
replicated index-build cost with nothing to parallelize against, and
the recorded speedup will honestly say so.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py           # full (n=4000)
    PYTHONPATH=src python benchmarks/bench_parallel.py --quick   # CI (n=1000)
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from harness import BENCHMARK_SEED, dataset_by_name  # noqa: E402

from repro import OverlapPredicate, parallel_join, similarity_join  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_parallel.json")

DATASET = "citation-words"
THRESHOLD = 15
ALGORITHM = "probe-count-optmerge"


def machine_profile() -> dict:
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
    }


def run(n: int, worker_counts: list[int], repeats: int) -> dict:
    dataset = dataset_by_name(DATASET, n)
    predicate = OverlapPredicate(THRESHOLD)

    def best_of(fn):
        results = [fn() for _ in range(repeats)]
        return min(results, key=lambda r: r.elapsed_seconds)

    serial = best_of(lambda: similarity_join(dataset, predicate, algorithm=ALGORITHM))
    serial_pairs = serial.pair_set()
    report = {
        "schema": 1,
        "kind": "parallel-benchmark",
        "dataset": f"{DATASET}-{n}",
        "seed": BENCHMARK_SEED,
        "predicate": predicate.name,
        "algorithm": ALGORITHM,
        "repeats": repeats,
        "machine": machine_profile(),
        "serial": {
            "seconds": round(serial.elapsed_seconds, 4),
            "work": serial.counters.total_work(),
            "pairs": len(serial.pairs),
        },
        "parallel": [],
    }
    for workers in worker_counts:
        result = best_of(
            lambda w=workers: parallel_join(
                dataset, predicate, algorithm=ALGORITHM, workers=w
            )
        )
        exact = result.pair_set() == serial_pairs
        if not exact:
            print(
                f"FATAL: workers={workers} pair set diverges from serial",
                file=sys.stderr,
            )
        report["parallel"].append(
            {
                "workers": workers,
                "seconds": round(result.elapsed_seconds, 4),
                "speedup": round(serial.elapsed_seconds / result.elapsed_seconds, 3),
                "work": result.counters.total_work(),
                "pairs": len(result.pairs),
                "exact_match": exact,
            }
        )
    report["exact"] = all(row["exact_match"] for row in report["parallel"])
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small dataset for CI (n=1000)"
    )
    parser.add_argument("--n", type=int, default=None, help="override record count")
    parser.add_argument(
        "--workers", type=int, nargs="+", default=[1, 2, 4],
        help="worker counts to benchmark (default 1 2 4)",
    )
    parser.add_argument(
        "--repeats", type=int, default=1,
        help="runs per configuration; best-of is reported (default 1)",
    )
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    n = args.n if args.n is not None else (1000 if args.quick else 4000)
    report = run(n, args.workers, max(1, args.repeats))
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    serial = report["serial"]
    print(f"{report['dataset']} {report['predicate']} {report['algorithm']}")
    print(f"  serial     {serial['seconds']:8.3f}s  work={serial['work']}")
    for row in report["parallel"]:
        marker = "" if row["exact_match"] else "  PAIR-SET MISMATCH"
        print(
            f"  workers={row['workers']:<2} {row['seconds']:8.3f}s"
            f"  speedup={row['speedup']:.2f}x  work={row['work']}{marker}"
        )
    print(f"wrote {args.output}")
    return 0 if report["exact"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
