"""Benchmark session plumbing: the paper-style series report.

Each benchmark test measures one curve of one figure/table and registers
its data points through the ``report`` fixture. At session end the rows
are printed grouped by experiment — the same series the paper plots —
and appended to ``benchmarks/series_output.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from collections import defaultdict

import pytest

_ROWS: dict[str, list[tuple[str, dict]]] = defaultdict(list)


@pytest.fixture
def report():
    """Register one data point: report(experiment, series_label, **cols)."""

    def add(experiment: str, series: str, **columns) -> None:
        _ROWS[experiment].append((series, columns))

    return add


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def _render() -> list[str]:
    lines = []
    for experiment in sorted(_ROWS):
        lines.append("")
        lines.append(f"=== {experiment} ===")
        for series, columns in _ROWS[experiment]:
            rendered = "  ".join(
                f"{key}={_format_value(value)}" for key, value in columns.items()
            )
            lines.append(f"  {series:34s} {rendered}")
    return lines


def pytest_terminal_summary(terminalreporter):
    if not _ROWS:
        return
    lines = _render()
    for line in lines:
        terminalreporter.write_line(line)
    out_path = os.path.join(os.path.dirname(__file__), "series_output.txt")
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines).lstrip("\n") + "\n")
    terminalreporter.write_line(f"\nseries written to {out_path}")
