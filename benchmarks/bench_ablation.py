"""Ablations of the design choices DESIGN.md calls out.

Not a paper figure — quantifies each individual mechanism so the
contribution of every optimization is visible in isolation:

* the L/S list split (how much of the index the merge never touches),
* the sort order (decreasing vs increasing vs natural),
* the home-similarity knob of Probe-Cluster,
* the stopword budget of Probe-stopWords.
"""

import pytest

from harness import citation_words, run_join
from repro import OverlapPredicate, ProbeClusterJoin, ProbeCountJoin

N = 2000
THRESHOLD = 15
DATA = None


def _data():
    global DATA
    if DATA is None:
        DATA = citation_words(N)
    return DATA


def test_ablation_ls_split_fraction(benchmark, report):
    """How many posting-list entries the L-split spares from merging."""

    def run():
        rows = {}
        for name in ("probe-count", "probe-count-optmerge"):
            rows[name] = run_join(name, _data(), OverlapPredicate(THRESHOLD))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    basic = rows["probe-count"].counters
    opt = rows["probe-count-optmerge"].counters
    report(
        "ablation: L/S split",
        "heap items merged",
        basic=basic.list_items_touched,
        optmerge=opt.list_items_touched,
        spared_fraction=1 - opt.list_items_touched / basic.list_items_touched,
        binary_searches_instead=opt.binary_searches,
    )
    assert opt.list_items_touched < basic.list_items_touched / 3


@pytest.mark.parametrize("direction", ["decreasing", "increasing", "natural"])
def test_ablation_sort_direction(benchmark, report, direction):
    """§3.3 prescribes decreasing size; measure the alternatives."""
    data = _data()
    if direction == "decreasing":
        ordered = data
        algorithm = ProbeCountJoin(variant="sort")
    elif direction == "increasing":
        permutation = list(reversed(data.sort_permutation_by_size_desc()))
        ordered = data.reorder(permutation)
        algorithm = ProbeCountJoin(variant="online")
    else:
        ordered = data
        algorithm = ProbeCountJoin(variant="online")

    result = benchmark.pedantic(
        algorithm.join, args=(ordered, OverlapPredicate(THRESHOLD)), rounds=1, iterations=1
    )
    report(
        "ablation: record order",
        direction,
        seconds=result.elapsed_seconds,
        work=result.counters.total_work(),
        pairs=len(result.pairs),
    )


@pytest.mark.parametrize("home_similarity", [0.2, 0.4, 0.6, 0.8])
def test_ablation_home_similarity(benchmark, report, home_similarity):
    """Cluster cohesion vs compression trade-off of §3.4."""
    algorithm = ProbeClusterJoin(home_similarity=home_similarity)
    result = benchmark.pedantic(
        algorithm.join, args=(_data(), OverlapPredicate(THRESHOLD)), rounds=1, iterations=1
    )
    report(
        "ablation: probe-cluster home similarity",
        f"s={home_similarity:g}",
        seconds=result.elapsed_seconds,
        clusters=result.counters.clusters_created,
        work=result.counters.total_work(),
        pairs=len(result.pairs),
    )


def test_ablation_word_merged_index(benchmark, report):
    """§4.1 option 1 (grouping words), the paper's negative result.

    "Although the number of words reduces sufficiently, this does not
    result in significant reduction in index size because the larger
    lists did not overlap enough" — expect little compression and far
    more candidate verifications than the record-grouping approach.
    """
    from repro.core.word_merge import WordMergedIndexJoin

    data = citation_words(1000)
    predicate = OverlapPredicate(THRESHOLD)

    def run():
        merged = WordMergedIndexJoin().join(data, predicate)
        plain = run_join("probe-count-online", data, predicate)
        return merged, plain

    merged, plain = benchmark.pedantic(run, rounds=1, iterations=1)
    assert merged.pair_set() == plain.pair_set()
    report(
        "ablation: word-merged index (discarded §4.1 option)",
        "word-merged",
        seconds=merged.elapsed_seconds,
        words=merged.counters.extra["words"],
        superwords=merged.counters.extra["superwords"],
        verified=merged.counters.pairs_verified,
    )
    report(
        "ablation: word-merged index (discarded §4.1 option)",
        "probe-count-online (record-level)",
        seconds=plain.elapsed_seconds,
        verified=plain.counters.pairs_verified,
    )


@pytest.mark.parametrize("budget_fraction", [0.25, 0.5, 1.0])
def test_ablation_stopword_budget(benchmark, report, budget_fraction):
    """Fewer stopwords than the T-1 maximum: cheaper verify, slower merge."""
    algorithm = ProbeCountJoin(
        variant="stopwords", stopword_budget_fraction=budget_fraction
    )
    result = benchmark.pedantic(
        algorithm.join, args=(_data(), OverlapPredicate(THRESHOLD)), rounds=1, iterations=1
    )
    report(
        "ablation: stopword budget",
        f"fraction={budget_fraction:g}",
        stopwords=result.counters.extra["stopwords"],
        seconds=result.elapsed_seconds,
        work=result.counters.total_work(),
        pairs=len(result.pairs),
    )
