"""Merge-backend benchmark: heap merge vs score accumulator.

Runs the pinned citation/address workloads once per merge backend
(``heap`` and ``accumulator``), asserts the pair sets are identical
(the knob's correctness contract), and records per-case work counters,
wall-clock, and the accumulator's improvement ratios into a JSON
report.

The ``work`` counters are machine-independent — both backends report
``list_items_touched``/``candidates_checked``/``binary_searches`` with
identical semantics, and the accumulator's saving is the heap-pop term
vanishing — so the improvement ratio is a pure function of the
workload. Wall-clock ratios come from paired runs on the same machine
in the same process, so they too travel reasonably well; the machine
profile is embedded for interpretation.

Usage::

    PYTHONPATH=src python benchmarks/bench_merge.py           # full (n=2000)
    PYTHONPATH=src python benchmarks/bench_merge.py --quick   # CI (n=500)
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from harness import BENCHMARK_SEED, dataset_by_name  # noqa: E402

from repro import JaccardPredicate, OverlapPredicate, make_algorithm  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_merge.bench.json")

_PREDICATES = {
    "overlap": OverlapPredicate,
    "jaccard": JaccardPredicate,
}

#: (case-name, dataset, predicate, threshold, algorithm) — the
#: Probe-Count family paths the accumulator backend exists for.
CASES = [
    ("two-pass/citation-words/overlap-12", "citation-words", "overlap", 12, "probe-count"),
    ("optmerge/citation-words/overlap-12", "citation-words", "overlap", 12, "probe-count-optmerge"),
    ("optmerge/citation-3grams/jaccard-0.7", "citation-3grams", "jaccard", 0.7, "probe-count-optmerge"),
    ("online-sort/citation-words/overlap-12", "citation-words", "overlap", 12, "probe-count-sort"),
    ("online/address-3grams/overlap-30", "address-3grams", "overlap", 30, "probe-count-online"),
]


def machine_profile() -> dict:
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
    }


def run_case(dataset_name, predicate_name, threshold, algorithm, n, repeats) -> dict:
    dataset = dataset_by_name(dataset_name, n)
    predicate = _PREDICATES[predicate_name](threshold)

    def best_of(backend):
        results = [
            make_algorithm(algorithm, merge_backend=backend).join(dataset, predicate)
            for _ in range(repeats)
        ]
        return min(results, key=lambda r: r.elapsed_seconds)

    heap = best_of("heap")
    acc = best_of("accumulator")
    if heap.pair_set() != acc.pair_set():
        raise AssertionError(
            f"{algorithm} on {dataset_name}: backends disagree on pairs"
        )
    heap_work = heap.counters.total_work()
    acc_work = acc.counters.total_work()
    return {
        "pairs": len(heap.pairs),
        "heap": {
            "work": heap_work,
            "heap_pops": heap.counters.heap_pops,
            "seconds": round(heap.elapsed_seconds, 4),
        },
        "accumulator": {
            "work": acc_work,
            "accum_scans": acc.counters.accum_scans,
            "accum_writes": acc.counters.accum_writes,
            "gallop_steps": acc.counters.gallop_steps,
            "seconds": round(acc.elapsed_seconds, 4),
        },
        "work_improvement": round(1.0 - acc_work / heap_work, 4) if heap_work else 0.0,
        "wallclock_improvement": round(
            1.0 - acc.elapsed_seconds / heap.elapsed_seconds, 4
        )
        if heap.elapsed_seconds
        else 0.0,
    }


def run(n: int, repeats: int) -> dict:
    cases = {}
    print(f"merge-backend matrix n={n} (best of {repeats}):")
    for name, dataset_name, predicate_name, threshold, algorithm in CASES:
        row = run_case(dataset_name, predicate_name, threshold, algorithm, n, repeats)
        cases[name] = row
        print(
            f"  {name:<42} work {row['heap']['work']:>10} -> "
            f"{row['accumulator']['work']:>10} ({row['work_improvement']:+.1%})"
            f"  wall {row['heap']['seconds']:>7.3f}s -> "
            f"{row['accumulator']['seconds']:>7.3f}s"
            f" ({row['wallclock_improvement']:+.1%})"
        )
    return {"n": n, "cases": cases}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI profile (n=500)")
    parser.add_argument("--repeats", type=int, default=2, help="runs per backend")
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)
    n = 500 if args.quick else 2000
    report = {
        "schema": 1,
        "kind": "merge-backend-benchmark",
        "seed": BENCHMARK_SEED,
        "machine": machine_profile(),
        "profile": run(n, args.repeats),
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"report written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
