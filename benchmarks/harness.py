"""Shared benchmark harness: cached datasets and sweep helpers.

Scale note: the paper ran C code on a 2004 dual-Xeon over 250k-500k
records; this is pure Python, so dataset sizes are scaled down by
~50-100x. What must survive the scaling — and what EXPERIMENTS.md
compares — is the *shape* of each curve: which algorithm wins, by
roughly what factor, and where the crossovers sit. Alongside wall-clock
seconds every row reports the machine-independent ``work`` counter
(heap pops + list touches + searches + generated/verified pairs).
"""

from __future__ import annotations

import os
from functools import lru_cache

from repro import similarity_join
from repro.core.join import make_algorithm
from repro.core.records import Dataset
from repro.datagen import (
    address_all_3grams,
    address_name_3grams,
    citation_all_3grams,
    citation_all_words,
)
from repro.runtime.checkpoint import dataset_fingerprint

#: The one seed every pinned benchmark dataset is generated from.
#: Generation must be a pure function of ``(builder, n, seed)`` — no
#: dependence on hash randomization, process start method, or import
#: order — because parallel-join workers rebuild datasets in forked or
#: spawned processes and compare results pair-for-pair against a serial
#: baseline built in the parent. ``tests/integration/test_bench_datasets.py``
#: regression-tests this by fingerprinting across subprocesses.
#:
#: The default (42) is what every committed ``BENCH_*.json`` baseline
#: was produced under; ``REPRO_BENCH_SEED`` overrides it for ad-hoc
#: robustness sweeps (benchmark scripts also take ``--seed``, which
#: wins over the environment). Datagen and the approximate join mode
#: both consume the same knob, so one seed pins the whole trajectory.
BENCHMARK_SEED = int(os.environ.get("REPRO_BENCH_SEED", "42"))

# Scaled-down stand-ins for the paper's x-axes.
CITATION_SIZES = [500, 1000, 2000, 4000]
ADDRESS_SIZES = [500, 1000, 2000, 4000]
#: paper thresholds span 90%..20% of the average set size (24 words for
#: citation All-words -> T in 21..5); our citation average is ~22.
CITATION_THRESHOLDS = [8, 10, 12, 15, 18, 21]
CITATION_MID_THRESHOLDS = [12, 15, 18]  # the "averaged over thresholds" runs
#: address All-3grams averages ~50 grams; the paper used T=40 (85%).
ADDRESS_THRESHOLDS = [25, 30, 35, 40, 45]
ADDRESS_MID_THRESHOLDS = [30, 35, 40]


@lru_cache(maxsize=None)
def _build_dataset(name: str, n: int, seed: int) -> Dataset:
    return _GENERATORS[name](n, seed=seed)


def citation_words(n: int, seed: int | None = None) -> Dataset:
    return _build_dataset("citation-words", n, BENCHMARK_SEED if seed is None else seed)


def citation_3grams(n: int, seed: int | None = None) -> Dataset:
    return _build_dataset("citation-3grams", n, BENCHMARK_SEED if seed is None else seed)


def address_3grams(n: int, seed: int | None = None) -> Dataset:
    return _build_dataset("address-3grams", n, BENCHMARK_SEED if seed is None else seed)


def address_names(n: int, seed: int | None = None) -> Dataset:
    return _build_dataset("address-names", n, BENCHMARK_SEED if seed is None else seed)


_GENERATORS = {
    "citation-words": citation_all_words,
    "citation-3grams": citation_all_3grams,
    "address-3grams": address_all_3grams,
    "address-names": address_name_3grams,
}

# The named builders used to be lru_cached directly; keep their
# ``cache_clear`` contract (the seed-stability regression test rebuilds
# through it) by delegating to the shared cache.
for _builder in (citation_words, citation_3grams, address_3grams, address_names):
    _builder.cache_clear = _build_dataset.cache_clear
del _builder

#: Registry of the pinned benchmark datasets, by stable name. The
#: ``lru_cache`` on the shared builder is a per-process convenience
#: only; cross-process identity is guaranteed by the builders being
#: pure functions of ``(name, n, seed)``, with :data:`BENCHMARK_SEED`
#: the default seed.
DATASET_BUILDERS = {
    "citation-words": citation_words,
    "citation-3grams": citation_3grams,
    "address-3grams": address_3grams,
    "address-names": address_names,
}


def dataset_by_name(name: str, n: int, seed: int | None = None) -> Dataset:
    """Build (or fetch from the process-local cache) a pinned dataset."""
    builder = DATASET_BUILDERS.get(name)
    if builder is None:
        raise ValueError(
            f"unknown benchmark dataset {name!r};"
            f" expected one of {sorted(DATASET_BUILDERS)}"
        )
    return builder(n, seed=seed)


def dataset_fingerprints(n: int = 500) -> dict[str, str]:
    """Content hash of every pinned dataset at size ``n``.

    The cross-process regression currency: any two processes — parent,
    forked worker, spawned worker, CI runner — must produce identical
    fingerprints for the same ``(name, n)``.
    """
    return {
        name: dataset_fingerprint(dataset_by_name(name, n))
        for name in sorted(DATASET_BUILDERS)
    }


def run_join(algorithm_name: str, dataset: Dataset, predicate, **kwargs):
    """One join; returns the JoinResult (wall time + counters inside)."""
    return similarity_join(dataset, predicate, algorithm=algorithm_name, **kwargs)


def sweep_sizes(algorithm_name: str, datasets, predicate_factory, thresholds):
    """Average time over thresholds per dataset size (Figs 1, 7, 8)."""
    rows = []
    for data in datasets:
        total_seconds = 0.0
        total_work = 0
        pairs = 0
        for threshold in thresholds:
            result = run_join(algorithm_name, data, predicate_factory(threshold))
            total_seconds += result.elapsed_seconds
            total_work += result.counters.total_work()
            pairs = len(result.pairs)
        rows.append(
            {
                "n": len(data),
                "seconds": total_seconds / len(thresholds),
                "work": total_work // len(thresholds),
                "pairs_at_min_t": pairs,
            }
        )
    return rows


def sweep_thresholds(algorithm_name: str, dataset, predicate_factory, thresholds):
    """Time per threshold at fixed size (Figs 2, 4, 6, 9, 10)."""
    rows = []
    for threshold in thresholds:
        result = run_join(algorithm_name, dataset, predicate_factory(threshold))
        rows.append(
            {
                "T": threshold,
                "seconds": result.elapsed_seconds,
                "work": result.counters.total_work(),
                "pairs": len(result.pairs),
            }
        )
    return rows


__all__ = [
    "ADDRESS_MID_THRESHOLDS",
    "ADDRESS_SIZES",
    "ADDRESS_THRESHOLDS",
    "BENCHMARK_SEED",
    "CITATION_MID_THRESHOLDS",
    "CITATION_SIZES",
    "CITATION_THRESHOLDS",
    "DATASET_BUILDERS",
    "dataset_by_name",
    "dataset_fingerprints",
    "address_3grams",
    "address_names",
    "citation_3grams",
    "citation_words",
    "make_algorithm",
    "run_join",
    "sweep_sizes",
    "sweep_thresholds",
]
