"""Figure 11: ClusterMem running time vs index memory budget.

Three panels in the paper: citation across dataset sizes, citation
across thresholds (150k rows), and address across sizes — each plotting
running time against "index size as a fraction of maximum needed".

Paper shape to reproduce: output never changes, and as the budget drops
50x, running time stays within a small factor (<= ~2.5x in the paper).
Our simulated disk is the OS page cache, so our ratios come out flatter
still; the invariant part — exact same pairs at every budget — is
asserted.
"""

import pytest

from harness import address_3grams, citation_words, run_join
from repro import ClusterMemJoin, MemoryBudget, OverlapPredicate

FRACTIONS = [1.0, 0.5, 0.3, 0.2, 0.1, 0.05, 0.02]


# The paper's numbers include 2004 disk behaviour our page cache hides;
# the modeled time charges each non-sequential record fetch a seek.
SEEK_PENALTY_SECONDS = 0.005


def _budget_sweep(report, experiment, data, threshold):
    baseline = None
    baseline_modeled = None
    baseline_pairs = None
    for fraction in FRACTIONS:
        algorithm = ClusterMemJoin(MemoryBudget.fraction_of_full(data, fraction))
        result = algorithm.join(data, OverlapPredicate(threshold))
        modeled = result.elapsed_seconds + (
            result.counters.extra.get("disk_seeks", 0) * SEEK_PENALTY_SECONDS
        )
        if baseline is None:
            baseline = result.elapsed_seconds
            baseline_modeled = modeled
            baseline_pairs = result.pair_set()
        assert result.pair_set() == baseline_pairs
        report(
            experiment,
            f"fraction={fraction:g}",
            seconds=result.elapsed_seconds,
            ratio_vs_full=result.elapsed_seconds / baseline,
            modeled_disk_ratio=modeled / baseline_modeled,
            clusters=result.counters.clusters_created,
            batches=result.counters.extra["batches"],
            pairs=len(result.pairs),
        )


@pytest.mark.parametrize("n", [1000, 2000])
def test_fig11_citation_sizes(benchmark, report, n):
    data = citation_words(n)
    benchmark.pedantic(
        _budget_sweep,
        args=(report, f"fig11a citation n={n}: time vs index fraction (T=15)", data, 15),
        rounds=1, iterations=1,
    )


@pytest.mark.parametrize("threshold", [12, 15, 18])
def test_fig11_citation_thresholds(benchmark, report, threshold):
    data = citation_words(2000)
    benchmark.pedantic(
        _budget_sweep,
        args=(
            report,
            f"fig11b citation T={threshold}: time vs index fraction (n=2000)",
            data,
            threshold,
        ),
        rounds=1, iterations=1,
    )


@pytest.mark.parametrize("n", [1000, 2000])
def test_fig11_address_sizes(benchmark, report, n):
    data = address_3grams(n)
    benchmark.pedantic(
        _budget_sweep,
        args=(report, f"fig11c address n={n}: time vs index fraction (T=35)", data, 35),
        rounds=1, iterations=1,
    )
