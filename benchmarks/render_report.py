"""Render series_output.txt as ASCII bar charts.

Usage:
    python benchmarks/render_report.py [series_output.txt] [metric]
"""

import os
import sys

from repro.reporting import render_report


def main() -> int:
    default = os.path.join(os.path.dirname(__file__), "series_output.txt")
    path = sys.argv[1] if len(sys.argv) > 1 else default
    metric = sys.argv[2] if len(sys.argv) > 2 else "seconds"
    with open(path, "r", encoding="utf-8") as handle:
        print(render_report(handle.read(), metric=metric))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
