"""Figure 12: running time vs output size across predicates.

The paper's generalization check: run the full Probe-Cluster stack under
intersect-size, Jaccard, and TF-IDF cosine predicates, sweeping each
threshold so the joins produce growing numbers of output pairs, and
plot running time against output size. If the framework optimizes every
predicate equally well, the three curves coincide ("running times of
the three functions are within a factor 20-30% of each other").
"""

import pytest

from harness import citation_words, run_join
from repro import CosinePredicate, JaccardPredicate, OverlapPredicate

# Threshold ladders chosen to produce comparable output-size ranges.
SWEEPS = {
    "intersect-size": (OverlapPredicate, [21, 18, 15, 12, 10, 8]),
    "jaccard": (JaccardPredicate, [0.95, 0.9, 0.85, 0.8, 0.7, 0.6]),
    "cosine": (CosinePredicate, [0.98, 0.95, 0.92, 0.9, 0.85, 0.8]),
}

ALGORITHM = "probe-count-sort"


@pytest.mark.parametrize("n", [1000, 2000])
@pytest.mark.parametrize("series", sorted(SWEEPS))
def test_fig12_time_vs_output_size(benchmark, report, n, series):
    predicate_cls, thresholds = SWEEPS[series]
    data = citation_words(n)

    def sweep():
        rows = []
        for threshold in thresholds:
            result = run_join(ALGORITHM, data, predicate_cls(threshold))
            rows.append(
                {
                    "threshold": threshold,
                    "output_pairs": len(result.pairs),
                    "seconds": result.elapsed_seconds,
                    "work": result.counters.total_work(),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for row in rows:
        report(
            f"fig12 citation n={n}: time vs output pairs",
            f"{series} t={row['threshold']:g}",
            **row,
        )
