"""§4/§6 side experiment: index compression memory/CPU trade-off.

The paper: compression "would contribute to pushing the limit upto
which we can hold the index in memory" and is orthogonal to the
ClusterMem partitioning. Measures the compressed footprint of realistic
posting lists versus the decode cost a compressed probe pays.
"""

from harness import citation_words, run_join
from repro import OverlapPredicate
from repro.compression.compressed_join import CompressedProbeJoin

N = 2000
THRESHOLD = 15


def test_compressed_index_footprint_and_cost(benchmark, report):
    data = citation_words(N)
    predicate = OverlapPredicate(THRESHOLD)

    def run():
        compressed = CompressedProbeJoin().join(data, predicate)
        plain = run_join("probe-count-optmerge", data, predicate)
        return compressed, plain

    compressed, plain = benchmark.pedantic(run, rounds=1, iterations=1)
    assert compressed.pair_set() == plain.pair_set()
    bytes_compressed = compressed.counters.extra["index_bytes_compressed"]
    bytes_plain = compressed.counters.extra["index_bytes_plain"]
    report(
        "compression: index footprint vs probe cost",
        "compressed (varbyte+skips)",
        index_bytes=bytes_compressed,
        compression_ratio=bytes_plain / bytes_compressed,
        seconds=compressed.elapsed_seconds,
    )
    report(
        "compression: index footprint vs probe cost",
        "plain (8B/posting reference)",
        index_bytes=bytes_plain,
        compression_ratio=1.0,
        seconds=plain.elapsed_seconds,
    )
    assert bytes_compressed < bytes_plain
