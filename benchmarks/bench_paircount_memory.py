"""§2.4/§3.1 text claims: the Pair-Count memory wall.

"Even at 20,000 records the number of record pairs it generates does
not fit in one gigabyte of main memory" and "the optimized Pair count
algorithm could go upto 20,000 records ... whereas the original one
stopped at 10,000 records" — i.e. the optimization roughly doubles the
reachable dataset size under a fixed memory budget.

We reproduce the shape: peak pair-table growth is ~quadratic in n, and
under a fixed table limit the optimized variant reaches a strictly
larger n than the basic one.
"""

from harness import citation_words
from repro import OverlapPredicate, PairCountJoin, PairTableOverflow

SIZES = [250, 500, 1000, 2000]
THRESHOLD = 15
TABLE_LIMIT = 400_000  # plays the paper's 1 GB


def test_peak_pair_table_growth(benchmark, report):
    def sweep():
        rows = []
        for n in SIZES:
            data = citation_words(n)
            for optimized in (False, True):
                result = PairCountJoin(optimized=optimized).join(
                    data, OverlapPredicate(THRESHOLD)
                )
                rows.append((n, optimized, result.counters.peak_pair_table))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_key = {}
    for n, optimized, peak in rows:
        label = "pair-count-optmerge" if optimized else "pair-count"
        report("paircount memory: peak table vs n", f"{label} n={n}", peak_pairs=peak)
        by_key[(n, optimized)] = peak
    for n in SIZES:
        assert by_key[(n, True)] <= by_key[(n, False)]
    # quadratic-ish growth: 4x records -> ~>8x pairs
    assert by_key[(2000, False)] > 8 * by_key[(500, False)]


def test_max_reachable_size_under_budget(benchmark, report):
    def max_reachable(optimized: bool) -> int:
        reached = 0
        for n in SIZES:
            data = citation_words(n)
            try:
                PairCountJoin(optimized=optimized, pair_limit=TABLE_LIMIT).join(
                    data, OverlapPredicate(THRESHOLD)
                )
            except PairTableOverflow:
                break
            reached = n
        return reached

    def sweep():
        return max_reachable(False), max_reachable(True)

    basic_max, optimized_max = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "paircount memory: max n under table limit",
        f"limit={TABLE_LIMIT}",
        basic_max_n=basic_max,
        optimized_max_n=optimized_max,
    )
    # The paper's 10k -> 20k doubling, in shape.
    assert optimized_max > basic_max
