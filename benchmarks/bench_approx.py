"""Approximate-mode benchmark: recall/work trade across target recalls.

Sweeps the seeded CPSJoin-style approximate mode (:mod:`repro.approx`)
over a range of ``target_recall`` settings on the citation workloads
and compares every point against two exact baselines — Probe-Cluster
(the repo default) and the PPJoin+ positional-filter stack (the
strongest exact candidate generator). For each point it records the
*measured* recall against the exact pair set, the sampled recall
estimate the join itself reports, independent false-positive
re-verification (must always be zero), and the machine-independent
``work`` ratio against both baselines.

The sweep is deterministic: datasets and path forests both derive from
one seed (``--seed``, default :data:`harness.BENCHMARK_SEED`), so the
recall/work numbers in the report are a pure function of the workload
and reproduce bit-for-bit on any machine.

Usage::

    PYTHONPATH=src python benchmarks/bench_approx.py           # full (n=2000)
    PYTHONPATH=src python benchmarks/bench_approx.py --quick   # CI (n=500)
    PYTHONPATH=src python benchmarks/bench_approx.py --seed 7  # robustness run
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from harness import BENCHMARK_SEED, dataset_by_name  # noqa: E402

from repro import JaccardPredicate, similarity_join  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_approx.bench.json")

#: (case-name, dataset, jaccard threshold) — the two citation shapes:
#: short word sets with dense near-duplicate groups, and long 3-gram
#: sets where candidate pruning matters most.
CASES = [
    ("citation-words/jaccard-0.7", "citation-words", 0.7),
    ("citation-3grams/jaccard-0.7", "citation-3grams", 0.7),
]

#: The recall targets swept per case; 0.9 is the pinned gate point.
TARGET_RECALLS = [0.5, 0.7, 0.8, 0.9, 0.95]


def machine_profile() -> dict:
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
    }


def run_case(dataset_name, threshold, n, seed, targets) -> dict:
    dataset = dataset_by_name(dataset_name, n, seed=seed)
    predicate = JaccardPredicate(threshold)
    exact = similarity_join(dataset, predicate, algorithm="positional-filter")
    cluster = similarity_join(dataset, predicate, algorithm="probe-cluster")
    truth = exact.pair_set()
    exact_work = exact.counters.total_work()
    cluster_work = cluster.counters.total_work()
    bound = predicate.bind(dataset)

    points = []
    for target in targets:
        approx = similarity_join(
            dataset,
            predicate,
            mode="approx",
            target_recall=target,
            seed=seed,
        )
        emitted = approx.pair_set()
        recall = len(emitted & truth) / len(truth) if truth else 1.0
        false_positives = sum(
            1 for a, b in emitted if not bound.verify(a, b)[0]
        )
        if false_positives:
            raise AssertionError(
                f"{dataset_name} target={target}: {false_positives} emitted"
                " pair(s) failed exact re-verification"
            )
        work = approx.counters.total_work()
        points.append(
            {
                "target_recall": target,
                "recall": round(recall, 4),
                "recall_estimate": round(
                    approx.extra.get("recall_estimate", 0.0), 4
                ),
                "repetitions": approx.extra.get("approx_repetitions"),
                "pairs": len(approx.pairs),
                "false_positives": false_positives,
                "work": work,
                "work_vs_exact": round(work / exact_work, 4) if exact_work else 0.0,
                "work_vs_cluster": round(work / cluster_work, 4)
                if cluster_work
                else 0.0,
                "seconds": round(approx.elapsed_seconds, 4),
            }
        )
    return {
        "exact_pairs": len(truth),
        "exact": {
            "algorithm": "positional-filter",
            "work": exact_work,
            "seconds": round(exact.elapsed_seconds, 4),
        },
        "cluster": {
            "algorithm": "probe-cluster",
            "work": cluster_work,
            "seconds": round(cluster.elapsed_seconds, 4),
        },
        "points": points,
    }


def run(n: int, seed: int, targets) -> dict:
    cases = {}
    print(f"approx sweep n={n} seed={seed}:")
    for name, dataset_name, threshold in CASES:
        row = run_case(dataset_name, threshold, n, seed, targets)
        cases[name] = row
        print(
            f"  {name:<32} exact {row['exact']['work']} work,"
            f" {row['exact_pairs']} pairs"
        )
        for point in row["points"]:
            print(
                f"    target={point['target_recall']:<5}"
                f" recall={point['recall']:.4f}"
                f" reps={point['repetitions']:<4}"
                f" work ratio {point['work_vs_exact']:.3f} (exact)"
                f" / {point['work_vs_cluster']:.3f} (cluster)"
                f"  {point['seconds']:.3f}s"
            )
    return {"n": n, "seed": seed, "cases": cases}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI profile (n=500)")
    parser.add_argument(
        "--seed", type=int, default=None,
        help=f"dataset + path-forest seed (default {BENCHMARK_SEED};"
        " override for robustness sweeps)",
    )
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)
    n = 500 if args.quick else 2000
    seed = BENCHMARK_SEED if args.seed is None else args.seed
    report = {
        "schema": 1,
        "kind": "approx-recall-benchmark",
        "seed": seed,
        "machine": machine_profile(),
        "profile": run(n, seed, TARGET_RECALLS),
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"report written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
