"""Figures 3-6: threshold-optimized Probe vs Pair vs Word-Groups.

Fig 3 — citation, time vs size at fixed T. Fig 4 — citation, time vs
threshold at fixed size. Figs 5/6 — the same on the address 3-gram data.

Paper shapes to reproduce:

* Probe-Count-optMerge beats Word-Groups by about an order of magnitude
  ("at 150,000 records and T=21 Probe count took 5 minutes whereas Word
  Group took 90 minutes").
* Pair-Count "only completed for very small dataset sizes" — we model
  its memory wall with a pair-table limit and report DNF rows.
* Word-Groups only approaches Probe-Count at very low thresholds
  (~20% of the average set size).
"""

import pytest

from harness import address_3grams, citation_words, run_join, sweep_thresholds
from repro import OverlapPredicate, PairCountJoin, PairTableOverflow

# The pair table holds one dict entry (~50 B) per distinct pair: this
# limit plays the paper's "one gigabyte of main memory".
PAIR_LIMIT = 2_000_000

CITATION_T = 15          # ~70% of the ~22-word average (paper used T=21 of 24)
ADDRESS_T = 35           # ~70% of the ~50-gram average (paper used T=40 of 47)
PROBE_SIZES = [500, 1000, 2000, 4000]
WORD_GROUP_SIZES = [250, 500, 1000]  # an order of magnitude slower, as in the paper
FIG4_N = 500
FIG6_N = 500
CITATION_T_SWEEP = [8, 10, 12, 15, 18, 21]
ADDRESS_T_SWEEP = [25, 30, 35, 40, 45]


def _size_sweep(report, experiment, algorithm, datasets, threshold, **kwargs):
    for data in datasets:
        try:
            result = run_join(algorithm, data, OverlapPredicate(threshold), **kwargs)
        except PairTableOverflow as overflow:
            report(experiment, f"{algorithm} n={len(data)}", seconds="DNF",
                   note=f"pair table hit {overflow.n_pairs} entries")
            continue
        report(
            experiment,
            f"{algorithm} n={len(data)}",
            seconds=result.elapsed_seconds,
            work=result.counters.total_work(),
            pairs=len(result.pairs),
        )


class TestFig3CitationSizes:
    def test_probe_optmerge(self, benchmark, report):
        datasets = [citation_words(n) for n in PROBE_SIZES]
        benchmark.pedantic(
            _size_sweep,
            args=(report, "fig3 citation: time vs size (T=15)", "probe-count-optmerge",
                  datasets, CITATION_T),
            rounds=1, iterations=1,
        )

    def test_pair_count_optmerge(self, benchmark, report):
        datasets = [citation_words(n) for n in PROBE_SIZES]
        benchmark.pedantic(
            _size_sweep,
            args=(report, "fig3 citation: time vs size (T=15)", "pair-count-optmerge",
                  datasets, CITATION_T),
            kwargs={"pair_limit": PAIR_LIMIT},
            rounds=1, iterations=1,
        )

    def test_word_groups(self, benchmark, report):
        datasets = [citation_words(n) for n in WORD_GROUP_SIZES]
        benchmark.pedantic(
            _size_sweep,
            args=(report, "fig3 citation: time vs size (T=15)", "word-groups-optmerge",
                  datasets, CITATION_T),
            rounds=1, iterations=1,
        )


@pytest.mark.parametrize(
    "algorithm", ["probe-count-optmerge", "pair-count-optmerge", "word-groups-optmerge"]
)
def test_fig4_citation_threshold_sweep(benchmark, report, algorithm):
    data = citation_words(FIG4_N)
    rows = benchmark.pedantic(
        sweep_thresholds,
        args=(algorithm, data, OverlapPredicate, CITATION_T_SWEEP),
        rounds=1, iterations=1,
    )
    for row in rows:
        report(
            f"fig4 citation: time vs threshold (n={FIG4_N})",
            f"{algorithm} T={row['T']}",
            **row,
        )


class TestFig5AddressSizes:
    def test_probe_optmerge(self, benchmark, report):
        datasets = [address_3grams(n) for n in PROBE_SIZES]
        benchmark.pedantic(
            _size_sweep,
            args=(report, "fig5 address: time vs size (T=35)", "probe-count-optmerge",
                  datasets, ADDRESS_T),
            rounds=1, iterations=1,
        )

    def test_pair_count_optmerge(self, benchmark, report):
        datasets = [address_3grams(n) for n in PROBE_SIZES[:3]]
        benchmark.pedantic(
            _size_sweep,
            args=(report, "fig5 address: time vs size (T=35)", "pair-count-optmerge",
                  datasets, ADDRESS_T),
            kwargs={"pair_limit": PAIR_LIMIT},
            rounds=1, iterations=1,
        )

    def test_word_groups(self, benchmark, report):
        datasets = [address_3grams(n) for n in WORD_GROUP_SIZES]
        benchmark.pedantic(
            _size_sweep,
            args=(report, "fig5 address: time vs size (T=35)", "word-groups-optmerge",
                  datasets, ADDRESS_T),
            rounds=1, iterations=1,
        )


@pytest.mark.parametrize(
    "algorithm", ["probe-count-optmerge", "pair-count-optmerge", "word-groups-optmerge"]
)
def test_fig6_address_threshold_sweep(benchmark, report, algorithm):
    data = address_3grams(FIG6_N)
    rows = benchmark.pedantic(
        sweep_thresholds,
        args=(algorithm, data, OverlapPredicate, ADDRESS_T_SWEEP),
        rounds=1, iterations=1,
    )
    for row in rows:
        report(
            f"fig6 address: time vs threshold (n={FIG6_N})",
            f"{algorithm} T={row['T']}",
            **row,
        )
