"""§5.3: band-join partitioning strategies.

The paper proposes Simple / Greedy / Optimal window partitioning as an
alternative to evaluating range filters inside the merge, noting the
optimal DP "leads to significantly reduced aggregation time" over the
simple windows, and that on their datasets the in-merge filter still
won. Both claims are measured here on a length-skewed corpus (where
partitioning has the best chance).
"""

import random

from harness import run_join
from repro import Dataset, JaccardPredicate, ProbeCountJoin
from repro.partition.bandjoin import (
    greedy_partitions,
    optimal_partitions,
    partition_cost,
    partitioned_band_join,
    simple_partitions,
)


def _length_skewed_dataset(n: int, seed: int) -> Dataset:
    """Wide continuous size spread plus near-duplicates.

    Continuous sizes give the window partitioners real merge decisions;
    the duplicates give the joins something to output.
    """
    rng = random.Random(seed)
    records = []
    while len(records) < n:
        size = rng.randint(3, 60)
        base = sorted(rng.sample(range(3000), size))
        records.append(tuple(base))
        if rng.random() < 0.3 and len(records) < n:
            dup = list(base)
            dup[rng.randrange(len(dup))] = rng.randrange(3000)
            records.append(tuple(sorted(set(dup))))
    return Dataset(records)


PREDICATE = JaccardPredicate(0.7)
N = 1500


def test_partitioning_cost_comparison(benchmark, report):
    data = _length_skewed_dataset(N, seed=4)
    bound = PREDICATE.bind(data)
    band = bound.band_filter()

    def compute():
        return {
            "simple": partition_cost(simple_partitions(band.keys, band.radius)),
            "greedy": partition_cost(greedy_partitions(band.keys, band.radius)),
            "optimal": partition_cost(optimal_partitions(band.keys, band.radius)),
        }

    costs = benchmark.pedantic(compute, rounds=1, iterations=1)
    for strategy, cost in costs.items():
        report("bandjoin: modeled partition cost", strategy, cost=cost)
    assert costs["optimal"] <= costs["greedy"] <= costs["simple"] * 1.001


def test_partitioned_vs_inmerge_filter(benchmark, report):
    data = _length_skewed_dataset(N, seed=4)

    def run_all():
        rows = {}
        direct = run_join("probe-count-sort", data, PREDICATE)
        rows["in-merge filter"] = direct
        for strategy in ("simple", "greedy", "optimal"):
            rows[f"partitioned/{strategy}"] = partitioned_band_join(
                data, PREDICATE, ProbeCountJoin(variant="sort"), strategy
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    reference_pairs = rows["in-merge filter"].pair_set()
    for label, result in rows.items():
        assert result.pair_set() == reference_pairs
        report(
            "bandjoin: in-merge filter vs partitioning",
            label,
            seconds=result.elapsed_seconds,
            work=result.counters.total_work(),
            pairs=len(result.pairs),
        )
