"""Post-paper comparison: MergeOpt vs prefix filtering vs PPJoin+.

The prefix-filter line (SSJoin/AllPairs/PPJoin/PPJoin+) succeeded this
paper. All three contenders attack the same skew: MergeOpt *skips* the
longest posting lists at probe time; prefix filtering never *indexes*
anything beyond each record's rare prefix; the full positional stack
additionally folds in length, position, and suffix filters before any
candidate is verified. This bench runs the paper's citation workload
across overlap thresholds (where the prefix bound is already tight and
the extra layers only trim verifications) and across Jaccard
thresholds (the PPJoin setting, where the position filter does the
heavy pruning).
"""

import pytest

from harness import citation_words, run_join
from repro import JaccardPredicate, OverlapPredicate
from repro.core.positional_filter import PositionalFilterJoin
from repro.core.prefix_filter import PrefixFilterJoin

N = 2000
THRESHOLDS = [10, 12, 15, 18, 21]
JACCARD_THRESHOLDS = [0.6, 0.7, 0.8]


def _report_three_way(report, group, label, prefix, stack, mergeopt):
    report(
        group,
        f"prefix-filter {label}",
        seconds=prefix.elapsed_seconds,
        candidates=prefix.counters.candidates_checked,
        index_entries=prefix.counters.index_entries,
    )
    report(
        group,
        f"positional-filter {label}",
        seconds=stack.elapsed_seconds,
        candidates=stack.counters.candidates_checked,
        index_entries=stack.counters.index_entries,
        rejected=(
            stack.counters.candidate_rejections_position
            + stack.counters.candidate_rejections_suffix
        ),
    )
    report(
        group,
        f"probe-count-sort {label}",
        seconds=mergeopt.elapsed_seconds,
        candidates=mergeopt.counters.candidates_checked,
        index_entries=mergeopt.counters.index_entries,
    )


@pytest.mark.parametrize("threshold", THRESHOLDS)
def test_prefix_stack_vs_mergeopt_overlap(benchmark, report, threshold):
    data = citation_words(N)
    predicate = OverlapPredicate(threshold)

    def run():
        prefix = PrefixFilterJoin().join(data, predicate)
        stack = PositionalFilterJoin().join(data, predicate)
        mergeopt = run_join("probe-count-sort", data, predicate)
        return prefix, stack, mergeopt

    prefix, stack, mergeopt = benchmark.pedantic(run, rounds=1, iterations=1)
    assert prefix.pair_set() == mergeopt.pair_set()
    assert stack.pair_set() == mergeopt.pair_set()
    _report_three_way(
        report,
        "prefix stack vs mergeopt, overlap (citation n=2000)",
        f"T={threshold}",
        prefix,
        stack,
        mergeopt,
    )


@pytest.mark.parametrize("fraction", JACCARD_THRESHOLDS)
def test_prefix_stack_vs_mergeopt_jaccard(benchmark, report, fraction):
    data = citation_words(N)
    predicate = JaccardPredicate(fraction)

    def run():
        prefix = PrefixFilterJoin().join(data, predicate)
        stack = PositionalFilterJoin().join(data, predicate)
        mergeopt = run_join("probe-count-sort", data, predicate)
        return prefix, stack, mergeopt

    prefix, stack, mergeopt = benchmark.pedantic(run, rounds=1, iterations=1)
    assert prefix.pair_set() == mergeopt.pair_set()
    assert stack.pair_set() == mergeopt.pair_set()
    _report_three_way(
        report,
        "prefix stack vs mergeopt, jaccard (citation n=2000)",
        f"f={fraction}",
        prefix,
        stack,
        mergeopt,
    )
