"""Post-paper comparison: MergeOpt vs prefix filtering.

The prefix-filter line (SSJoin/AllPairs/PPJoin) succeeded this paper.
Both attack the same skew: MergeOpt *skips* the longest posting lists
at probe time; prefix filtering never *indexes* anything beyond each
record's rare prefix. This bench compares the two on the paper's
citation workload across thresholds.
"""

import pytest

from harness import citation_words, run_join
from repro import OverlapPredicate
from repro.core.prefix_filter import PrefixFilterJoin

N = 2000
THRESHOLDS = [10, 12, 15, 18, 21]


@pytest.mark.parametrize("threshold", THRESHOLDS)
def test_prefix_vs_mergeopt(benchmark, report, threshold):
    data = citation_words(N)
    predicate = OverlapPredicate(threshold)

    def run():
        prefix = PrefixFilterJoin().join(data, predicate)
        mergeopt = run_join("probe-count-sort", data, predicate)
        return prefix, mergeopt

    prefix, mergeopt = benchmark.pedantic(run, rounds=1, iterations=1)
    assert prefix.pair_set() == mergeopt.pair_set()
    report(
        "prefix-filter vs mergeopt (citation n=2000)",
        f"prefix-filter T={threshold}",
        seconds=prefix.elapsed_seconds,
        candidates=prefix.counters.candidates_checked,
        index_entries=prefix.counters.index_entries,
    )
    report(
        "prefix-filter vs mergeopt (citation n=2000)",
        f"probe-count-sort T={threshold}",
        seconds=mergeopt.elapsed_seconds,
        candidates=mergeopt.counters.candidates_checked,
        index_entries=mergeopt.counters.index_entries,
    )
