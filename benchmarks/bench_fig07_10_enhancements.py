"""Figures 7-10: the Probe-Count enhancement chain.

optMerge (two-pass) -> online (single pass) -> sort (pre-sorted) ->
Cluster (Probe-Cluster). Figs 7/8 sweep dataset size (time averaged over
thresholds); Figs 9/10 sweep the threshold at fixed size (the paper
plots these on a log axis).

Paper shapes to reproduce:

* online is 2-3x faster than two-pass optMerge (merge cost halves:
  sum n_w(n_w-1)/2 instead of sum n_w^2, plus partial lists),
* pre-sorting buys up to another ~2x,
* clustering helps most on the duplicate-rich citation data and little
  on the address data ("The citation dataset had lot more high-overlap
  sets than the address dataset").
"""

import pytest

from harness import (
    ADDRESS_MID_THRESHOLDS,
    ADDRESS_SIZES,
    ADDRESS_THRESHOLDS,
    CITATION_MID_THRESHOLDS,
    CITATION_SIZES,
    CITATION_THRESHOLDS,
    address_3grams,
    citation_words,
    sweep_sizes,
    sweep_thresholds,
)
from repro import OverlapPredicate

ALGORITHMS = [
    "probe-count-optmerge",
    "probe-count-online",
    "probe-count-sort",
    "probe-cluster",
]

FIG9_N = 2000
FIG10_N = 1000


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig7_citation_time_vs_size(benchmark, report, algorithm):
    datasets = [citation_words(n) for n in CITATION_SIZES]
    rows = benchmark.pedantic(
        sweep_sizes,
        args=(algorithm, datasets, OverlapPredicate, CITATION_MID_THRESHOLDS),
        rounds=1, iterations=1,
    )
    for row in rows:
        report("fig7 citation: time vs size (avg over T)", f"{algorithm} n={row['n']}", **row)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig8_address_time_vs_size(benchmark, report, algorithm):
    datasets = [address_3grams(n) for n in ADDRESS_SIZES]
    rows = benchmark.pedantic(
        sweep_sizes,
        args=(algorithm, datasets, OverlapPredicate, ADDRESS_MID_THRESHOLDS),
        rounds=1, iterations=1,
    )
    for row in rows:
        report("fig8 address: time vs size (avg over T)", f"{algorithm} n={row['n']}", **row)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig9_citation_time_vs_threshold(benchmark, report, algorithm):
    data = citation_words(FIG9_N)
    rows = benchmark.pedantic(
        sweep_thresholds,
        args=(algorithm, data, OverlapPredicate, CITATION_THRESHOLDS),
        rounds=1, iterations=1,
    )
    for row in rows:
        report(
            f"fig9 citation: time vs threshold (n={FIG9_N}, log-scale in paper)",
            f"{algorithm} T={row['T']}",
            **row,
        )


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig10_address_time_vs_threshold(benchmark, report, algorithm):
    data = address_3grams(FIG10_N)
    rows = benchmark.pedantic(
        sweep_thresholds,
        args=(algorithm, data, OverlapPredicate, ADDRESS_THRESHOLDS),
        rounds=1, iterations=1,
    )
    for row in rows:
        report(
            f"fig10 address: time vs threshold (n={FIG10_N}, log-scale in paper)",
            f"{algorithm} T={row['T']}",
            **row,
        )
