"""Figures 1 & 2: MergeOpt vs stopwords vs basic Probe-Count.

Fig 1 — running time vs dataset size, averaged over thresholds
(citation All-words). Fig 2 — running time vs threshold at fixed size.

Paper shapes to reproduce: Probe >> Probe-stopWords >> Probe-optMerge,
with the optMerge gain growing sharply as the threshold rises ("running
time reduces by a factor of five to hundred"; at 87% threshold, 80x vs
basic and 20x vs stopwords).
"""

import pytest

from harness import (
    CITATION_MID_THRESHOLDS,
    CITATION_THRESHOLDS,
    citation_words,
    sweep_sizes,
    sweep_thresholds,
)
from repro import OverlapPredicate

# Basic Probe-Count is quadratic-ish in list lengths: keep sizes modest.
FIG1_SIZES = [250, 500, 1000, 2000]
FIG2_N = 1000

ALGORITHMS = ["probe-count", "probe-count-stopwords", "probe-count-optmerge"]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig1_time_vs_size(benchmark, report, algorithm):
    datasets = [citation_words(n) for n in FIG1_SIZES]
    rows = benchmark.pedantic(
        sweep_sizes,
        args=(algorithm, datasets, OverlapPredicate, CITATION_MID_THRESHOLDS),
        rounds=1,
        iterations=1,
    )
    for row in rows:
        report("fig1 citation: time vs size (avg over T)", f"{algorithm} n={row['n']}", **row)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig2_time_vs_threshold(benchmark, report, algorithm):
    data = citation_words(FIG2_N)
    rows = benchmark.pedantic(
        sweep_thresholds,
        args=(algorithm, data, OverlapPredicate, CITATION_THRESHOLDS),
        rounds=1,
        iterations=1,
    )
    for row in rows:
        report(
            f"fig2 citation: time vs threshold (n={FIG2_N})",
            f"{algorithm} T={row['T']}",
            **row,
        )
