"""Memory-mapped columnar postings: open-time, residency, probe work.

Compares the three index substrates on the same join — the in-memory
``ScoredInvertedIndex``, the zero-copy mapped columns
(``index_backend='mmap'``), and the varbyte streaming-decode fallback
(``DiskProbeJoin``) — and measures what the mapped format exists for:
opening a persisted index is O(directory) (milliseconds regardless of
posting volume) and serving faults in only the postings a query stream
actually touches, not the file.
"""

import os
import tempfile
import time

from harness import citation_words, run_join
from repro import JaccardPredicate, OverlapPredicate
from repro.core.service import SimilarityIndex
from repro.storage.disk_index import DiskProbeJoin
from repro.storage.mmap_index import MappedInvertedIndex

N = 2000
THRESHOLD = 15
SERVE_QUERIES = 64


def _open_ms(opener, rounds: int = 5) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        opened = opener()
        elapsed = time.perf_counter() - started
        opened.close()
        best = min(best, elapsed)
    return best * 1000.0


def test_substrates_probe_work_and_wall(benchmark, report):
    data = citation_words(N)
    predicate = OverlapPredicate(THRESHOLD)

    def run():
        memory = run_join("probe-count-optmerge", data, predicate)
        mapped = run_join(
            "probe-count-optmerge", data, predicate, index_backend="mmap"
        )
        disk = DiskProbeJoin().join(data, predicate)
        return memory, mapped, disk

    memory, mapped, disk = benchmark.pedantic(run, rounds=1, iterations=1)
    assert mapped.pair_set() == memory.pair_set() == disk.pair_set()
    assert sorted((p.rid_a, p.rid_b, p.similarity) for p in mapped.pairs) == sorted(
        (p.rid_a, p.rid_b, p.similarity) for p in memory.pairs
    )
    report(
        "mmap: probe work by index substrate",
        "in-memory ScoredInvertedIndex",
        work=memory.counters.total_work(),
        pairs=len(memory.pairs),
        seconds=memory.elapsed_seconds,
    )
    report(
        "mmap: probe work by index substrate",
        "mapped columns (zero-copy)",
        work=mapped.counters.total_work(),
        pairs=len(mapped.pairs),
        seconds=mapped.elapsed_seconds,
    )
    report(
        "mmap: probe work by index substrate",
        "disk varbyte (streaming decode)",
        work=disk.counters.total_work(),
        pairs=len(disk.pairs),
        seconds=disk.elapsed_seconds,
    )
    # The mapped columns feed the identical merge: same counted work.
    assert mapped.counters.total_work() == memory.counters.total_work()


def test_open_time_and_residency(benchmark, report, tmp_path):
    data = citation_words(N)
    predicate = OverlapPredicate(THRESHOLD)
    path = str(tmp_path / "join.rpmx")
    run_join(
        "probe-count-optmerge", data, predicate,
        index_backend="mmap", index_path=path,
    )
    file_bytes = os.path.getsize(path)

    open_ms = benchmark.pedantic(
        lambda: _open_ms(lambda: MappedInvertedIndex.open(path)),
        rounds=1, iterations=1,
    )
    index = MappedInvertedIndex.open(path)
    try:
        directory_bytes = index.directory_bytes
        # Touch the postings a small probe stream needs, nothing more.
        for rid in range(SERVE_QUERIES):
            index.probe_lists(data[rid], [1.0] * len(data[rid]))
        resident = index.resident_bytes()
    finally:
        index.close()
    report(
        "mmap: open time and residency",
        f"join index n={N}",
        file_mb=file_bytes / 1e6,
        directory_kb=directory_bytes / 1e3,
        open_ms=open_ms,
        resident_after_64_probes_mb=resident / 1e6,
    )
    assert open_ms < 100.0
    assert resident < file_bytes


def test_serving_open_time(benchmark, report, tmp_path):
    data = citation_words(N)
    predicate = JaccardPredicate(0.7)
    service = SimilarityIndex(predicate)
    for record in data.records:
        service.add(record)
    snap = str(tmp_path / "ix.snap")
    mpath = str(tmp_path / "ix.rpmx")
    service.save(snap)
    service.save(mpath, format="mmap")

    def measure():
        mapped_ms = _open_ms(
            lambda: SimilarityIndex.load(mpath, predicate, mmap=True), rounds=3
        )
        started = time.perf_counter()
        SimilarityIndex.load(snap, predicate)
        snapshot_ms = (time.perf_counter() - started) * 1000.0
        return mapped_ms, snapshot_ms

    mapped_ms, snapshot_ms = benchmark.pedantic(measure, rounds=1, iterations=1)
    mapped = SimilarityIndex.load(mpath, predicate, mmap=True)
    try:
        queries = list(data.records[:SERVE_QUERIES])
        for query in queries:
            mapped.query(query)
        resident = mapped._index.resident_bytes()
    finally:
        mapped.close()
    report(
        "mmap: serving open time",
        "load(mmap=True) — map + directory",
        open_ms=mapped_ms,
        resident_after_64_queries_mb=resident / 1e6,
        file_mb=os.path.getsize(mpath) / 1e6,
    )
    report(
        "mmap: serving open time",
        "load() — decode + rebuild",
        open_ms=snapshot_ms,
    )
    assert mapped_ms < 100.0
    assert mapped_ms < snapshot_ms
