"""Perf-regression gate over machine-independent ``work`` counters.

Runs a pinned matrix of (dataset, predicate, algorithm) cases covering
every hot path the micro-optimization work touches — the MergeOpt heap
(``heap_merge``), the two-pass probe, the prefix-filter candidate scan,
and the compressed-postings decode loop — and records each case's
``work`` counter (heap pops + list touches + searches + generated and
verified pairs) plus wall-clock into ``BENCH_serial.json`` at the repo
root.

The baseline file holds two profiles: ``quick`` (n=500, the subset CI
re-runs on every push) and ``full`` (n=2000, the whole matrix). With
``--check`` the gate re-runs one profile and fails on any ``work``
regression above 10% versus the committed numbers. Only counters gate:
they are a pure function of (dataset, predicate, algorithm) and
therefore identical on every machine, so the committed baseline is
valid on any CI runner. Wall-clock is recorded for trend-watching but
never fails the gate.

With ``--bitmap`` the gate instead covers the bitmap-signature
candidate filter (:mod:`repro.filters`): every case runs each join
twice — unfiltered and with ``bitmap_filter=True`` — asserts the two
pair sets are identical (the filter's soundness contract), and records
the filtered run's ``work`` plus the verification-count reduction into
``BENCH_bitmap.json``. Cases with a pinned ``min_reduction`` addition-
ally fail the gate when the filter stops pruning at least that share
of verifications (the headline win this optimization exists for).

With ``--merge`` the gate covers the merge-backend knob
(:mod:`repro.core.accumulator`): every case runs the join once per
backend — ``heap`` and ``accumulator`` — asserts the two pair sets are
identical (the knob's correctness contract), and records the
accumulator run's ``work`` plus both improvement ratios into
``BENCH_merge.json``. Cases carry pinned floors on the work-proxy and
(where stable) wall-clock improvement — the headline win this backend
exists for must not silently erode.

With ``--prefix`` the gate covers the prefix-filter stack
(:mod:`repro.core.positional_filter`): every case runs the same join
three ways — MergeOpt (``probe-count-sort``), the basic prefix filter,
and the full PPJoin+ positional/suffix stack — asserts all three pair
sets are identical (the stack is pure pruning), and records the
stack's ``work`` plus the candidate-count reduction over the basic
prefix filter into ``BENCH_prefix.json``. Every case carries a pinned
floor on ``1 - candidates(stack) / candidates(prefix)`` — the extra
filter layers must keep pruning at least that share of candidates.
Cases are Jaccard workloads by design: for a constant overlap
threshold the prefix bound is already tight (``upper >= overlap + 1 +
(t - 1) >= t``), so the position filter provably never fires there.

With ``--serve`` the gate covers the serving tier
(:mod:`repro.serving`): every case runs the same query stream through
a single-index :class:`IndexServer`, an in-process
:class:`ShardedIndexServer`, and a remote-sharded front end whose
shards are all :class:`ShardServer` nodes on loopback, asserts all
three answer streams are identical (the tier's exactness contract,
now spanning the wire transport), and records the sharded run's
merge-work counters plus client-observed p50/p99 for every tier into
``BENCH_serve.json``. Work counters and answer identity gate hard;
the latencies — including the local-vs-remote comparison — are
machine-dependent and recorded for trend-watching only.

With ``--mmap`` the gate covers the memory-mapped columnar index
(:mod:`repro.storage.mmap_index`): every case runs the same join on
all three substrates — the in-memory index, the zero-copy mapped
columns (``index_backend='mmap'``), and the varbyte streaming-decode
fallback — asserts the mapped run's matches are *bit-identical* to
the in-memory run (pairs and similarities; the substrate contract)
and the disk fallback agrees on pairs, then measures what the format
exists for: ``SimilarityIndex.load(mmap=True)`` open time must stay
under an absolute ceiling (open cost is O(directory), so the bound is
noise-proof on any runner) and the bytes resident after a pinned
query stream — directory plus touched postings, a deterministic
counter, not an RSS sample — gates against ``BENCH_mmap.json`` like
any other work counter.

With ``--approx`` the gate covers the approximate join mode
(:mod:`repro.approx`): every case runs the exact positional-filter
join (ground truth), the exact Probe-Cluster join (the default the
approximate mode competes against), and the seeded LSH approximate
join at ``target_recall=0.9``, then gates three things at once —
measured recall against the exact pair set must stay at or above the
target, every emitted pair must *independently* re-verify exactly
(zero false positives, the mode's soundness contract), and the
approximate run's ``work`` must stay at or below half the exact
positional-filter baseline's (the speedup this mode exists for) —
into ``BENCH_approx.json``. The seed is :data:`BENCHMARK_SEED`, so
recall and work are deterministic and the committed numbers hold on
any runner.

With ``--report`` the gate prints a compact trajectory table across
every committed BENCH file (serial / parallel / bitmap / merge /
prefix / mmap / serve / approx) and exits; nothing is run. Missing or
unreadable BENCH files are skipped with a warning — a fresh clone that
has only some baselines still gets a table for what exists.

Usage::

    PYTHONPATH=src python benchmarks/perf_gate.py                 # rewrite baseline (both profiles)
    PYTHONPATH=src python benchmarks/perf_gate.py --check         # gate full profile
    PYTHONPATH=src python benchmarks/perf_gate.py --quick --check # gate quick profile (CI)
    PYTHONPATH=src python benchmarks/perf_gate.py --bitmap          # rewrite bitmap baseline
    PYTHONPATH=src python benchmarks/perf_gate.py --bitmap --check  # gate bitmap paths
    PYTHONPATH=src python benchmarks/perf_gate.py --merge           # rewrite merge baseline
    PYTHONPATH=src python benchmarks/perf_gate.py --merge --check   # gate merge backends
    PYTHONPATH=src python benchmarks/perf_gate.py --prefix          # rewrite prefix-stack baseline
    PYTHONPATH=src python benchmarks/perf_gate.py --prefix --check  # gate the filter stack
    PYTHONPATH=src python benchmarks/perf_gate.py --serve           # rewrite serve baseline
    PYTHONPATH=src python benchmarks/perf_gate.py --serve --check   # gate sharded serving
    PYTHONPATH=src python benchmarks/perf_gate.py --mmap            # rewrite mmap baseline
    PYTHONPATH=src python benchmarks/perf_gate.py --mmap --check    # gate the mapped index
    PYTHONPATH=src python benchmarks/perf_gate.py --approx          # rewrite approx baseline
    PYTHONPATH=src python benchmarks/perf_gate.py --approx --check  # gate recall/soundness/speedup
    PYTHONPATH=src python benchmarks/perf_gate.py --report          # cross-BENCH trajectory table
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from harness import BENCHMARK_SEED, dataset_by_name  # noqa: E402

from repro import JaccardPredicate, OverlapPredicate, similarity_join  # noqa: E402
from repro.compression.compressed_join import CompressedProbeJoin  # noqa: E402
from repro.core.service import SimilarityIndex  # noqa: E402
from repro.serving import IndexServer, ShardedIndexServer  # noqa: E402
from repro.serving.transport import ShardServer  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "BENCH_serial.json")
BITMAP_BASELINE = os.path.join(REPO_ROOT, "BENCH_bitmap.json")
MERGE_BASELINE = os.path.join(REPO_ROOT, "BENCH_merge.json")
PARALLEL_BASELINE = os.path.join(REPO_ROOT, "BENCH_parallel.json")
PREFIX_BASELINE = os.path.join(REPO_ROOT, "BENCH_prefix.json")
SERVE_BASELINE = os.path.join(REPO_ROOT, "BENCH_serve.json")
MMAP_BASELINE = os.path.join(REPO_ROOT, "BENCH_mmap.json")
APPROX_BASELINE = os.path.join(REPO_ROOT, "BENCH_approx.json")

#: Allowed relative growth of a case's ``work`` counter before the gate
#: fails. Counters are deterministic, so any growth is a real algorithmic
#: regression; 10% of headroom absorbs intentional small trade-offs that
#: a PR should call out explicitly by re-baselining.
TOLERANCE = 0.10

_PREDICATES = {
    "overlap": OverlapPredicate,
    "jaccard": JaccardPredicate,
}

#: (case-name, dataset, predicate, threshold, algorithm). Names are the
#: join keys between baseline and fresh runs — never rename casually.
_CASES = [
    ("heap-merge/citation-words/overlap-12", "citation-words", "overlap", 12, "probe-count-optmerge"),
    ("heap-merge/citation-3grams/jaccard-0.7", "citation-3grams", "jaccard", 0.7, "probe-count-optmerge"),
    ("two-pass/citation-words/overlap-12", "citation-words", "overlap", 12, "probe-count"),
    ("online/address-3grams/overlap-30", "address-3grams", "overlap", 30, "probe-count-online"),
    ("cluster/citation-words/overlap-15", "citation-words", "overlap", 15, "probe-cluster"),
    ("prefix-filter/citation-words/overlap-12", "citation-words", "overlap", 12, "prefix-filter"),
    ("compressed/citation-words/overlap-12", "citation-words", "overlap", 12, "probe-count-compressed"),
]

#: Subset exercised under ``--quick`` (CI): one case per optimized module.
_QUICK_CASES = {
    "heap-merge/citation-words/overlap-12",
    "two-pass/citation-words/overlap-12",
    "prefix-filter/citation-words/overlap-12",
    "compressed/citation-words/overlap-12",
}

#: Bitmap-filter gate matrix: (case-name, dataset, predicate, threshold,
#: algorithm, min_reduction). ``min_reduction`` is the pinned floor on
#: ``1 - pairs_verified(filtered) / pairs_verified(unfiltered)`` — the
#: paths the filter exists for must keep pruning; ``None`` means the
#: case only gates work/pairs (merge-driven candidates already carry
#: their weights, so the adaptive controller rightly switches the
#: filter off there and no reduction is expected).
_BITMAP_CASES = [
    ("bitmap/prefix-filter/citation-words/overlap-12", "citation-words", "overlap", 12, "prefix-filter", 0.25),
    ("bitmap/prefix-filter/citation-3grams/jaccard-0.7", "citation-3grams", "jaccard", 0.7, "prefix-filter", 0.25),
    ("bitmap/two-pass/citation-words/overlap-12", "citation-words", "overlap", 12, "probe-count", None),
    ("bitmap/cluster/citation-words/overlap-15", "citation-words", "overlap", 15, "probe-cluster", None),
]

#: Bitmap cases exercised under ``--quick`` (CI).
_BITMAP_QUICK_CASES = {
    "bitmap/prefix-filter/citation-words/overlap-12",
    "bitmap/two-pass/citation-words/overlap-12",
}

#: Merge-backend gate matrix: (case-name, dataset, predicate, threshold,
#: algorithm, min_work_improvement, min_wall_improvement). Improvements
#: are ``1 - accumulator / heap``; the work floor is machine-independent
#: (pure counters), the wall floor comes from paired same-process runs
#: and is pinned only where the margin is wide enough to be noise-proof.
_MERGE_CASES = [
    ("merge/two-pass/citation-words/overlap-12", "citation-words", "overlap", 12, "probe-count", 0.40, 0.25),
    ("merge/optmerge/citation-words/overlap-12", "citation-words", "overlap", 12, "probe-count-optmerge", 0.25, None),
    ("merge/optmerge/citation-3grams/jaccard-0.7", "citation-3grams", "jaccard", 0.7, "probe-count-optmerge", 0.30, 0.25),
    ("merge/online-sort/citation-words/overlap-12", "citation-words", "overlap", 12, "probe-count-sort", 0.25, None),
]

#: Merge cases exercised under ``--quick`` (CI).
_MERGE_QUICK_CASES = {
    "merge/two-pass/citation-words/overlap-12",
    "merge/optmerge/citation-words/overlap-12",
}

#: Prefix-stack gate matrix: (case-name, dataset, predicate, threshold,
#: min_candidate_reduction). Each case runs probe-count-sort (MergeOpt),
#: prefix-filter, and positional-filter; all three must emit identical
#: pairs, and the stack must prune at least ``min_candidate_reduction``
#: of the basic prefix filter's candidates. All cases are Jaccard: the
#: position filter needs a size-dependent threshold to fire at all.
_PREFIX_CASES = [
    ("prefix-stack/citation-words/jaccard-0.7", "citation-words", "jaccard", 0.7, 0.50),
    ("prefix-stack/citation-words/jaccard-0.8", "citation-words", "jaccard", 0.8, 0.50),
    ("prefix-stack/citation-3grams/jaccard-0.7", "citation-3grams", "jaccard", 0.7, 0.50),
    ("prefix-stack/address-3grams/jaccard-0.7", "address-3grams", "jaccard", 0.7, 0.50),
]

#: Prefix-stack cases exercised under ``--quick`` (CI).
_PREFIX_QUICK_CASES = {
    "prefix-stack/citation-words/jaccard-0.7",
    "prefix-stack/citation-3grams/jaccard-0.7",
}

#: Serving-tier gate matrix: (case-name, dataset, predicate, threshold,
#: shards). Each case streams the same queries through a single-index
#: IndexServer and a ShardedIndexServer and must get identical answers;
#: the sharded run's merge-work counters gate hard (deterministic per
#: dataset/predicate/shard-count), the p50/p99 are informational.
_SERVE_CASES = [
    ("serve/citation-words/overlap-12/shards-4", "citation-words", "overlap", 12, 4),
    ("serve/citation-words/overlap-12/shards-2", "citation-words", "overlap", 12, 2),
    ("serve/citation-3grams/jaccard-0.7/shards-4", "citation-3grams", "jaccard", 0.7, 4),
]

#: Serve cases exercised under ``--quick`` (CI).
_SERVE_QUICK_CASES = {
    "serve/citation-words/overlap-12/shards-4",
}

#: Queries per serve case: the first K corpus records re-asked as probes.
_SERVE_QUERIES = 64

#: Mapped-index gate matrix: (case-name, dataset, predicate, threshold,
#: algorithm). Each case joins on all three substrates (in-memory,
#: mapped columns, varbyte streaming decode) and serves a pinned query
#: stream off a ``save(format='mmap')`` file.
_MMAP_CASES = [
    ("mmap/optmerge/citation-words/overlap-12", "citation-words", "overlap", 12, "probe-count-optmerge"),
    ("mmap/two-pass/citation-words/overlap-12", "citation-words", "overlap", 12, "probe-count"),
    ("mmap/optmerge/citation-3grams/jaccard-0.7", "citation-3grams", "jaccard", 0.7, "probe-count-optmerge"),
]

#: Mmap cases exercised under ``--quick`` (CI).
_MMAP_QUICK_CASES = {
    "mmap/optmerge/citation-words/overlap-12",
    "mmap/two-pass/citation-words/overlap-12",
}

#: Approximate-mode gate matrix: (case-name, dataset, predicate,
#: threshold, target_recall, min_recall, max_work_ratio). Each case
#: runs positional-filter (exact ground truth), probe-cluster (the
#: competing exact default, informational), and the seeded approximate
#: join; measured recall against the exact pair set must reach
#: ``min_recall``, every emitted pair must independently re-verify
#: (zero false positives), and ``work(approx) / work(exact)`` must stay
#: at or below ``max_work_ratio``. Both citation shapes are covered:
#: All-words (short sets, dense matches) and All-3grams (long sets,
#: where path hashing prunes hardest).
_APPROX_CASES = [
    ("approx/citation-words/jaccard-0.7", "citation-words", "jaccard", 0.7, 0.9, 0.9, 0.5),
    ("approx/citation-3grams/jaccard-0.7", "citation-3grams", "jaccard", 0.7, 0.9, 0.9, 0.5),
]

#: Approx cases exercised under ``--quick`` (CI): both — the matrix is
#: only two cases and recall/soundness are the headline contract.
_APPROX_QUICK_CASES = {name for name, *_ in _APPROX_CASES}

#: Absolute ceiling on ``load(mmap=True)`` open time, milliseconds.
#: Open cost is O(directory) — parse the header and JSON directory,
#: map the file — and measures ~2ms where the snapshot decode+rebuild
#: path takes ~75ms, so 100ms (the acceptance bound for multi-hundred-
#: MB files) is noise-proof on any CI runner. The committed baseline's
#: ``open_ms`` is additionally honored as 3x headroom where tighter.
_MMAP_OPEN_CEILING_MS = 100.0

#: Queries per mmap serving measurement: the first K corpus records.
_MMAP_QUERIES = 64

#: Dict-shaped mirror of ``CostCounters.total_work`` for servers that
#: report ``counters_snapshot()`` instead of a counters object.
_WORK_COUNTERS = (
    "heap_pops", "list_items_touched", "binary_searches",
    "pairs_generated", "pairs_verified",
)

_PROFILES = {"quick": 500, "full": 2000}


def _join_once(
    dataset,
    predicate,
    algorithm,
    bitmap_filter=None,
    merge_backend=None,
    index_backend=None,
):
    if algorithm == "probe-count-compressed":
        instance = CompressedProbeJoin()
    else:
        from repro import make_algorithm

        instance = make_algorithm(algorithm)
    instance.bitmap_filter = bitmap_filter
    if merge_backend is not None:
        instance.merge_backend = merge_backend
    if index_backend is not None:
        instance.index_backend = index_backend
    return instance.join(dataset, predicate)


def _run_case(dataset_name, predicate_name, threshold, algorithm, n):
    dataset = dataset_by_name(dataset_name, n)
    predicate = _PREDICATES[predicate_name](threshold)
    result = _join_once(dataset, predicate, algorithm)
    return {
        "work": result.counters.total_work(),
        "pairs": len(result.pairs),
        "seconds": round(result.elapsed_seconds, 4),
    }


def _run_bitmap_case(dataset_name, predicate_name, threshold, algorithm, n):
    """One unfiltered + one filtered run; the filter must not change pairs."""
    dataset = dataset_by_name(dataset_name, n)
    predicate = _PREDICATES[predicate_name](threshold)
    plain = _join_once(dataset, predicate, algorithm)
    filtered = _join_once(dataset, predicate, algorithm, bitmap_filter=True)
    pairs_match = sorted((p.rid_a, p.rid_b) for p in plain.pairs) == sorted(
        (p.rid_a, p.rid_b) for p in filtered.pairs
    )
    base_verified = plain.counters.pairs_verified
    reduction = (
        1.0 - filtered.counters.pairs_verified / base_verified
        if base_verified
        else 0.0
    )
    return {
        "work": filtered.counters.total_work(),
        "pairs": len(filtered.pairs),
        "pairs_match": pairs_match,
        "pairs_verified_unfiltered": base_verified,
        "pairs_verified": filtered.counters.pairs_verified,
        "bitmap_checks": filtered.counters.bitmap_checks,
        "bitmap_rejects": filtered.counters.bitmap_rejects,
        "reduction": round(reduction, 4),
        "seconds": round(filtered.elapsed_seconds, 4),
    }


def _run_merge_case(dataset_name, predicate_name, threshold, algorithm, n):
    """One heap + one accumulator run; the backends must agree on pairs."""
    dataset = dataset_by_name(dataset_name, n)
    predicate = _PREDICATES[predicate_name](threshold)
    heap = _join_once(dataset, predicate, algorithm, merge_backend="heap")
    acc = _join_once(dataset, predicate, algorithm, merge_backend="accumulator")
    pairs_match = sorted((p.rid_a, p.rid_b) for p in heap.pairs) == sorted(
        (p.rid_a, p.rid_b) for p in acc.pairs
    )
    heap_work = heap.counters.total_work()
    acc_work = acc.counters.total_work()
    return {
        "work": acc_work,
        "pairs": len(acc.pairs),
        "pairs_match": pairs_match,
        "heap_work": heap_work,
        "heap_seconds": round(heap.elapsed_seconds, 4),
        "accum_scans": acc.counters.accum_scans,
        "accum_writes": acc.counters.accum_writes,
        "gallop_steps": acc.counters.gallop_steps,
        "work_improvement": round(1.0 - acc_work / heap_work, 4) if heap_work else 0.0,
        "wallclock_improvement": round(
            1.0 - acc.elapsed_seconds / heap.elapsed_seconds, 4
        )
        if heap.elapsed_seconds
        else 0.0,
        "seconds": round(acc.elapsed_seconds, 4),
    }


def _run_prefix_case(dataset_name, predicate_name, threshold, n):
    """MergeOpt vs basic prefix vs the full stack; pairs must agree."""
    dataset = dataset_by_name(dataset_name, n)
    predicate = _PREDICATES[predicate_name](threshold)
    mergeopt = _join_once(dataset, predicate, "probe-count-sort")
    prefix = _join_once(dataset, predicate, "prefix-filter")
    stack = _join_once(dataset, predicate, "positional-filter")
    canonical = sorted((p.rid_a, p.rid_b) for p in mergeopt.pairs)
    pairs_match = (
        sorted((p.rid_a, p.rid_b) for p in prefix.pairs) == canonical
        and sorted((p.rid_a, p.rid_b) for p in stack.pairs) == canonical
    )
    base_candidates = prefix.counters.candidates_checked
    reduction = (
        1.0 - stack.counters.candidates_checked / base_candidates
        if base_candidates
        else 0.0
    )
    return {
        "work": stack.counters.total_work(),
        "pairs": len(stack.pairs),
        "pairs_match": pairs_match,
        "candidates_prefix": base_candidates,
        "candidates_stack": stack.counters.candidates_checked,
        "reduction": round(reduction, 4),
        "rejections_position": stack.counters.candidate_rejections_position,
        "rejections_suffix": stack.counters.candidate_rejections_suffix,
        "suffix_recursions": stack.counters.extra.get("suffix_recursions", 0),
        "prefix_work": prefix.counters.total_work(),
        "mergeopt_work": mergeopt.counters.total_work(),
        "prefix_seconds": round(prefix.elapsed_seconds, 4),
        "mergeopt_seconds": round(mergeopt.elapsed_seconds, 4),
        "seconds": round(stack.elapsed_seconds, 4),
    }


def _snapshot_work(counters: dict) -> int:
    return sum(counters.get(name, 0) for name in _WORK_COUNTERS)


def _percentile_ms(latencies: list[float], p: float) -> float:
    """Nearest-rank percentile of a latency sample, in milliseconds."""
    ordered = sorted(latencies)
    rank = max(0, min(len(ordered) - 1, int(round(p / 100.0 * len(ordered))) - 1))
    return round(ordered[rank] * 1000.0, 3)


def _run_serve_case(dataset_name, predicate_name, threshold, shards, n):
    """The same query stream through all three serving tiers.

    Single-index, in-process sharded, and remote-sharded (every shard a
    :class:`ShardServer` node on loopback) must answer identically; the
    remote latencies are recorded alongside the in-process ones so the
    per-query cost of the wire hop is visible in the baseline.
    """
    dataset = dataset_by_name(dataset_name, n)
    records = list(dataset.records)
    queries = records[:_SERVE_QUERIES]

    index = SimilarityIndex(_PREDICATES[predicate_name](threshold))
    for record in records:
        index.add(record)
    single = IndexServer(index, workers=2).start()

    sharded = ShardedIndexServer(
        _PREDICATES[predicate_name](threshold),
        shards=shards,
        workers=2,
        shard_workers=2,
    )
    for record in records:
        sharded.add(record)
    sharded.start()

    nodes = [
        ShardServer(
            SimilarityIndex(_PREDICATES[predicate_name](threshold))
        ).start()
        for _ in range(shards)
    ]
    remote = ShardedIndexServer(
        _PREDICATES[predicate_name](threshold),
        shards=shards,
        workers=2,
        shard_workers=2,
        shard_endpoints=[f"127.0.0.1:{node.port}" for node in nodes],
    )
    for record in records:
        remote.add(record)
    remote.start()

    try:
        single_before = _snapshot_work(index.counters_snapshot())
        single_latencies, single_answers = [], []
        for query in queries:
            started = time.perf_counter()
            matches = single.query(query, timeout=60.0)
            single_latencies.append(time.perf_counter() - started)
            single_answers.append(
                [(m.rid_a, round(m.similarity, 12)) for m in matches]
            )
        single_work = _snapshot_work(index.counters_snapshot()) - single_before

        sharded_before = _snapshot_work(sharded.counters_snapshot())
        sharded_latencies, sharded_answers = [], []
        run_started = time.perf_counter()
        for query in queries:
            started = time.perf_counter()
            result = sharded.query(query, timeout=60.0)
            sharded_latencies.append(time.perf_counter() - started)
            assert not result.partial, "benchmark run lost a shard"
            sharded_answers.append(
                [(m.rid_a, round(m.similarity, 12)) for m in result]
            )
        seconds = time.perf_counter() - run_started
        sharded_work = _snapshot_work(sharded.counters_snapshot()) - sharded_before

        remote_latencies, remote_answers = [], []
        for query in queries:
            started = time.perf_counter()
            result = remote.query(query, timeout=60.0)
            remote_latencies.append(time.perf_counter() - started)
            assert not result.partial, "benchmark run lost a remote shard"
            remote_answers.append(
                [(m.rid_a, round(m.similarity, 12)) for m in result]
            )
    finally:
        single.drain(timeout=30.0)
        sharded.drain(timeout=30.0)
        remote.drain(timeout=30.0)
        for node in nodes:
            node.stop()

    return {
        "work": sharded_work,
        "single_work": single_work,
        "pairs": sum(len(answer) for answer in sharded_answers),
        "pairs_match": sharded_answers == single_answers,
        "remote_pairs_match": remote_answers == single_answers,
        "queries": len(queries),
        "single_p50_ms": _percentile_ms(single_latencies, 50.0),
        "single_p99_ms": _percentile_ms(single_latencies, 99.0),
        "sharded_p50_ms": _percentile_ms(sharded_latencies, 50.0),
        "sharded_p99_ms": _percentile_ms(sharded_latencies, 99.0),
        "remote_p50_ms": _percentile_ms(remote_latencies, 50.0),
        "remote_p99_ms": _percentile_ms(remote_latencies, 99.0),
        "seconds": round(seconds, 4),
    }


def _run_mmap_case(dataset_name, predicate_name, threshold, algorithm, n):
    """The same join on all three substrates + a mapped serving pass.

    The in-memory and mapped runs must be bit-identical (pairs *and*
    similarities); the varbyte streaming-decode fallback must agree on
    pairs. The serving pass measures open time (best of 3) and the
    deterministic residency counter — directory bytes plus postings the
    query stream touched — off a ``save(format='mmap')`` file.
    """
    import tempfile

    from repro.storage.disk_index import DiskProbeJoin

    dataset = dataset_by_name(dataset_name, n)
    predicate = _PREDICATES[predicate_name](threshold)
    memory = _join_once(dataset, predicate, algorithm)
    mapped = _join_once(dataset, predicate, algorithm, index_backend="mmap")
    disk = DiskProbeJoin().join(dataset, predicate)
    memory_tuples = sorted(
        (p.rid_a, p.rid_b, p.similarity) for p in memory.pairs
    )
    mapped_tuples = sorted(
        (p.rid_a, p.rid_b, p.similarity) for p in mapped.pairs
    )
    disk_pairs = sorted((p.rid_a, p.rid_b) for p in disk.pairs)
    pairs_match = (
        mapped_tuples == memory_tuples
        and disk_pairs == [(a, b) for a, b, _s in memory_tuples]
    )

    service = SimilarityIndex(predicate)
    for record in dataset.records:
        service.add(record)
    with tempfile.TemporaryDirectory(prefix="repro-mmap-gate-") as tmp:
        path = os.path.join(tmp, "serve.rpmx")
        service.save(path, format="mmap")
        file_bytes = os.path.getsize(path)
        open_ms = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            opened = SimilarityIndex.load(path, predicate, mmap=True)
            open_ms = min(open_ms, (time.perf_counter() - started) * 1000.0)
            opened.close()
        opened = SimilarityIndex.load(path, predicate, mmap=True)
        try:
            queries = list(dataset.records[:_MMAP_QUERIES])
            live_answers = [
                [(m.rid_a, round(m.similarity, 12)) for m in service.query(q)]
                for q in queries
            ]
            mapped_answers = [
                [(m.rid_a, round(m.similarity, 12)) for m in opened.query(q)]
                for q in queries
            ]
            serve_match = mapped_answers == live_answers
            directory_bytes = opened._index.directory_bytes
            resident_bytes = opened._index.resident_bytes()
        finally:
            opened.close()

    return {
        "work": mapped.counters.total_work(),
        "pairs": len(mapped.pairs),
        "pairs_match": pairs_match,
        "serve_match": serve_match,
        "memory_work": memory.counters.total_work(),
        "disk_work": disk.counters.total_work(),
        "open_ms": round(open_ms, 3),
        "file_bytes": file_bytes,
        "directory_bytes": directory_bytes,
        "resident_bytes": resident_bytes,
        "memory_seconds": round(memory.elapsed_seconds, 4),
        "seconds": round(mapped.elapsed_seconds, 4),
    }


def _run_approx_case(dataset_name, predicate_name, threshold, target_recall, n):
    """Exact ground truth vs the seeded approximate join.

    Recall is measured against the positional-filter pair set (exact by
    construction), soundness by re-verifying every emitted pair with a
    freshly bound predicate — independent of the join's own verifier —
    and the work ratio against the exact baseline's ``total_work()``.
    Probe-Cluster work is recorded alongside for context.
    """
    dataset = dataset_by_name(dataset_name, n)
    predicate = _PREDICATES[predicate_name](threshold)
    exact = _join_once(dataset, predicate, "positional-filter")
    cluster = _join_once(dataset, predicate, "probe-cluster")
    approx = similarity_join(
        dataset,
        predicate,
        mode="approx",
        target_recall=target_recall,
        seed=BENCHMARK_SEED,
    )
    truth = {(p.rid_a, p.rid_b) for p in exact.pairs}
    emitted = {(p.rid_a, p.rid_b) for p in approx.pairs}
    recall = len(emitted & truth) / len(truth) if truth else 1.0
    bound = predicate.bind(dataset)
    false_positives = sum(
        1
        for a, b in emitted
        if (a, b) not in truth or not bound.verify(a, b)[0]
    )
    exact_work = exact.counters.total_work()
    approx_work = approx.counters.total_work()
    return {
        "work": approx_work,
        "pairs": len(approx.pairs),
        "exact_pairs": len(truth),
        "recall": round(recall, 4),
        "recall_estimate": round(approx.extra.get("recall_estimate", 0.0), 4),
        "false_positives": false_positives,
        "exact_work": exact_work,
        "cluster_work": cluster.counters.total_work(),
        "work_ratio": round(approx_work / exact_work, 4) if exact_work else 0.0,
        "repetitions": approx.extra.get("approx_repetitions"),
        "jaccard_floor": approx.extra.get("approx_jaccard_floor"),
        "exact_seconds": round(exact.elapsed_seconds, 4),
        "seconds": round(approx.elapsed_seconds, 4),
    }


def run_profile(
    profile: str,
    bitmap: bool = False,
    merge: bool = False,
    serve: bool = False,
    prefix: bool = False,
    mmap: bool = False,
    approx: bool = False,
) -> dict:
    n = _PROFILES[profile]
    cases = {}
    started = time.perf_counter()
    label = (
        "bitmap"
        if bitmap
        else "merge"
        if merge
        else "serve"
        if serve
        else "prefix-stack"
        if prefix
        else "mmap"
        if mmap
        else "approx"
        if approx
        else "perf"
    )
    print(f"{label} matrix [{profile}] n={n}:")
    if approx:
        for name, dataset_name, predicate_name, threshold, target, _, _ in _APPROX_CASES:
            if profile == "quick" and name not in _APPROX_QUICK_CASES:
                continue
            cases[name] = _run_approx_case(
                dataset_name, predicate_name, threshold, target, n
            )
            row = cases[name]
            print(
                f"  {name:<48} work={row['work']:<12}"
                f" recall={row['recall']:.4f}"
                f" fp={row['false_positives']}"
                f" ratio={row['work_ratio']:.3f}"
                f" ({row['seconds']:.3f}s vs exact {row['exact_seconds']:.3f}s)"
            )
    elif mmap:
        for name, dataset_name, predicate_name, threshold, algorithm in _MMAP_CASES:
            if profile == "quick" and name not in _MMAP_QUICK_CASES:
                continue
            cases[name] = _run_mmap_case(
                dataset_name, predicate_name, threshold, algorithm, n
            )
            row = cases[name]
            print(
                f"  {name:<48} work={row['work']:<12}"
                f" match={row['pairs_match']}"
                f" serve_match={row['serve_match']}"
                f" open={row['open_ms']}ms"
                f" resident {row['resident_bytes']}/{row['file_bytes']}B"
                f" {row['seconds']:.3f}s"
            )
    elif prefix:
        for name, dataset_name, predicate_name, threshold, _ in _PREFIX_CASES:
            if profile == "quick" and name not in _PREFIX_QUICK_CASES:
                continue
            cases[name] = _run_prefix_case(
                dataset_name, predicate_name, threshold, n
            )
            row = cases[name]
            print(
                f"  {name:<48} work={row['work']:<12}"
                f" match={row['pairs_match']}"
                f" candidates {row['candidates_prefix']}"
                f" -> {row['candidates_stack']}"
                f" reduction={row['reduction']:.1%}"
                f" {row['seconds']:.3f}s"
            )
    elif serve:
        for name, dataset_name, predicate_name, threshold, shards in _SERVE_CASES:
            if profile == "quick" and name not in _SERVE_QUICK_CASES:
                continue
            cases[name] = _run_serve_case(
                dataset_name, predicate_name, threshold, shards, n
            )
            row = cases[name]
            print(
                f"  {name:<48} work={row['work']:<12}"
                f" match={row['pairs_match']}"
                f" remote_match={row['remote_pairs_match']}"
                f" p50 {row['sharded_p50_ms']}ms vs {row['single_p50_ms']}ms"
                f" p99 {row['sharded_p99_ms']}ms vs {row['single_p99_ms']}ms"
                f" remote p50 {row['remote_p50_ms']}ms"
                f" p99 {row['remote_p99_ms']}ms"
            )
    elif merge:
        for name, dataset_name, predicate_name, threshold, algorithm, _, _ in _MERGE_CASES:
            if profile == "quick" and name not in _MERGE_QUICK_CASES:
                continue
            cases[name] = _run_merge_case(
                dataset_name, predicate_name, threshold, algorithm, n
            )
            row = cases[name]
            print(
                f"  {name:<48} work={row['work']:<12}"
                f" improvement={row['work_improvement']:.1%}"
                f" wall={row['wallclock_improvement']:.1%}"
                f" {row['seconds']:.3f}s"
            )
    elif bitmap:
        for name, dataset_name, predicate_name, threshold, algorithm, _ in _BITMAP_CASES:
            if profile == "quick" and name not in _BITMAP_QUICK_CASES:
                continue
            cases[name] = _run_bitmap_case(
                dataset_name, predicate_name, threshold, algorithm, n
            )
            row = cases[name]
            print(
                f"  {name:<48} work={row['work']:<12}"
                f" pairs={row['pairs']:<6} reduction={row['reduction']:.1%}"
                f" {row['seconds']:.3f}s"
            )
    else:
        for name, dataset_name, predicate_name, threshold, algorithm in _CASES:
            if profile == "quick" and name not in _QUICK_CASES:
                continue
            cases[name] = _run_case(
                dataset_name, predicate_name, threshold, algorithm, n
            )
            print(
                f"  {name:<45} work={cases[name]['work']:<12}"
                f" pairs={cases[name]['pairs']:<6} {cases[name]['seconds']:.3f}s"
            )
    return {
        "n": n,
        "cases": cases,
        "total_seconds": round(time.perf_counter() - started, 3),
    }


def _report_shell(
    profiles: dict,
    bitmap: bool = False,
    merge: bool = False,
    serve: bool = False,
    prefix: bool = False,
    mmap: bool = False,
    approx: bool = False,
) -> dict:
    kind = (
        "bitmap-perf-baseline"
        if bitmap
        else "merge-perf-baseline"
        if merge
        else "serve-perf-baseline"
        if serve
        else "prefix-stack-perf-baseline"
        if prefix
        else "mmap-perf-baseline"
        if mmap
        else "approx-perf-baseline"
        if approx
        else "serial-perf-baseline"
    )
    return {
        "schema": 1,
        "kind": kind,
        "seed": BENCHMARK_SEED,
        "tolerance": TOLERANCE,
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "profiles": profiles,
    }


def check(fresh: dict, baseline: dict, profile: str) -> list[str]:
    """Return gate failures; empty means the gate passes."""
    base_profile = baseline.get("profiles", {}).get(profile)
    if base_profile is None:
        return [f"baseline has no {profile!r} profile; re-generate it"]
    if base_profile.get("n") != fresh["n"]:
        return [
            f"baseline {profile} n={base_profile.get('n')} != run n={fresh['n']};"
            " re-generate the baseline"
        ]
    failures = []
    base_cases = base_profile.get("cases", {})
    for name, row in fresh["cases"].items():
        base = base_cases.get(name)
        if base is None:
            print(f"  NEW CASE (not gated): {name}")
            continue
        if row["pairs"] != base["pairs"]:
            failures.append(
                f"{name}: pair count changed {base['pairs']} -> {row['pairs']}"
                " (correctness, not perf — investigate before re-baselining)"
            )
        allowed = base["work"] * (1 + TOLERANCE)
        if row["work"] > allowed:
            ratio = row["work"] / base["work"]
            failures.append(
                f"{name}: work regressed {base['work']} -> {row['work']}"
                f" ({ratio:.2%} of baseline, tolerance {1 + TOLERANCE:.0%})"
            )
        elif row["work"] != base["work"]:
            print(
                f"  work drift within tolerance: {name}"
                f" {base['work']} -> {row['work']}"
            )
    return failures


def check_bitmap(fresh: dict, baseline: dict, profile: str) -> list[str]:
    """Gate the bitmap-filter cases: soundness first, then perf."""
    failures = check(fresh, baseline, profile)
    floors = {name: floor for name, _, _, _, _, floor in _BITMAP_CASES}
    for name, row in fresh["cases"].items():
        if not row.get("pairs_match", True):
            failures.append(
                f"{name}: filtered join emitted different pairs than the"
                " unfiltered join (bitmap filter is UNSOUND)"
            )
        floor = floors.get(name)
        if floor is not None and row["reduction"] < floor:
            failures.append(
                f"{name}: verification reduction {row['reduction']:.1%}"
                f" fell below the pinned floor {floor:.0%}"
            )
    return failures


def check_merge(fresh: dict, baseline: dict, profile: str) -> list[str]:
    """Gate the merge-backend cases: identity first, then improvement."""
    failures = check(fresh, baseline, profile)
    work_floors = {name: floor for name, _, _, _, _, floor, _ in _MERGE_CASES}
    wall_floors = {name: floor for name, _, _, _, _, _, floor in _MERGE_CASES}
    for name, row in fresh["cases"].items():
        if not row.get("pairs_match", True):
            failures.append(
                f"{name}: accumulator backend emitted different pairs than"
                " the heap backend (merge backends are NOT equivalent)"
            )
        floor = work_floors.get(name)
        if floor is not None and row["work_improvement"] < floor:
            failures.append(
                f"{name}: work improvement {row['work_improvement']:.1%}"
                f" fell below the pinned floor {floor:.0%}"
            )
        floor = wall_floors.get(name)
        if floor is not None and row["wallclock_improvement"] < floor:
            failures.append(
                f"{name}: wall-clock improvement"
                f" {row['wallclock_improvement']:.1%}"
                f" fell below the pinned floor {floor:.0%}"
            )
    return failures


def check_prefix(fresh: dict, baseline: dict, profile: str) -> list[str]:
    """Gate the filter-stack cases: pair identity, then pruning floors."""
    failures = check(fresh, baseline, profile)
    floors = {name: floor for name, _, _, _, floor in _PREFIX_CASES}
    for name, row in fresh["cases"].items():
        if not row.get("pairs_match", True):
            failures.append(
                f"{name}: the filter stack emitted different pairs than"
                " MergeOpt / the basic prefix filter (a filter layer is"
                " UNSOUND)"
            )
        floor = floors.get(name)
        if floor is not None and row["reduction"] < floor:
            failures.append(
                f"{name}: candidate reduction {row['reduction']:.1%}"
                f" fell below the pinned floor {floor:.0%}"
            )
    return failures


def check_mmap(fresh: dict, baseline: dict, profile: str) -> list[str]:
    """Gate the mapped index: bit-identity, open-time, residency."""
    failures = check(fresh, baseline, profile)
    base_cases = baseline.get("profiles", {}).get(profile, {}).get("cases", {})
    for name, row in fresh["cases"].items():
        if not row.get("pairs_match", True):
            failures.append(
                f"{name}: the mapped join emitted different matches than"
                " the in-memory or streaming-decode substrate (the mapped"
                " columns are NOT a drop-in)"
            )
        if not row.get("serve_match", True):
            failures.append(
                f"{name}: the mapped service answered differently than the"
                " live index (serving off the mapped file is NOT exact)"
            )
        base = base_cases.get(name)
        # Open time: O(directory), so an absolute ceiling is noise-proof;
        # honor the committed number with 3x headroom where it's tighter.
        ceiling_ms = _MMAP_OPEN_CEILING_MS
        if base is not None and "open_ms" in base:
            ceiling_ms = min(ceiling_ms, max(base["open_ms"] * 3.0, 25.0))
        if row["open_ms"] > ceiling_ms:
            failures.append(
                f"{name}: load(mmap=True) took {row['open_ms']}ms,"
                f" ceiling {ceiling_ms:.1f}ms (open must stay O(directory))"
            )
        # Residency is a deterministic counter (directory + touched
        # postings), so it gates like work: no silent growth past 10%.
        if base is not None and "resident_bytes" in base:
            allowed = base["resident_bytes"] * (1 + TOLERANCE)
            if row["resident_bytes"] > allowed:
                failures.append(
                    f"{name}: resident bytes regressed"
                    f" {base['resident_bytes']} -> {row['resident_bytes']}"
                    f" (tolerance {1 + TOLERANCE:.0%}; the query stream is"
                    " faulting in more of the file)"
                )
        if row["resident_bytes"] >= row["file_bytes"]:
            failures.append(
                f"{name}: resident bytes {row['resident_bytes']} reached the"
                f" file size {row['file_bytes']} (zero-copy serving is"
                " materializing the whole index)"
            )
    return failures


def check_serve(fresh: dict, baseline: dict, profile: str) -> list[str]:
    """Gate the serving cases: answer identity first, then merge work."""
    failures = check(fresh, baseline, profile)
    for name, row in fresh["cases"].items():
        if not row.get("pairs_match", True):
            failures.append(
                f"{name}: sharded server answered differently than the"
                " single-index server (scatter-gather is NOT exact)"
            )
        if not row.get("remote_pairs_match", True):
            failures.append(
                f"{name}: remote-sharded server answered differently than"
                " the single-index server (the wire transport is NOT exact)"
            )
    return failures


def check_approx(fresh: dict, baseline: dict, profile: str) -> list[str]:
    """Gate the approximate mode: soundness, recall floor, work ratio."""
    failures = check(fresh, baseline, profile)
    recall_floors = {name: floor for name, _, _, _, _, floor, _ in _APPROX_CASES}
    ratio_caps = {name: cap for name, _, _, _, _, _, cap in _APPROX_CASES}
    for name, row in fresh["cases"].items():
        if row.get("false_positives", 0):
            failures.append(
                f"{name}: {row['false_positives']} emitted pair(s) failed"
                " independent exact re-verification (the approximate mode"
                " is UNSOUND — it must never emit a false positive)"
            )
        floor = recall_floors.get(name)
        if floor is not None and row["recall"] < floor:
            failures.append(
                f"{name}: measured recall {row['recall']:.4f} fell below"
                f" the pinned floor {floor} (target_recall no longer met)"
            )
        cap = ratio_caps.get(name)
        if cap is not None and row["work_ratio"] > cap:
            failures.append(
                f"{name}: work ratio {row['work_ratio']:.3f} vs the exact"
                f" positional-filter baseline exceeded the cap {cap}"
                " (the speedup this mode exists for has eroded)"
            )
    return failures


# ----------------------------------------------------------------------
# Cross-BENCH trajectory report
# ----------------------------------------------------------------------


def _load_json(path: str) -> dict | None:
    """Read a BENCH file, or skip-and-warn when absent or unreadable.

    The report is a trajectory view, not a gate: a clone that only has
    some baselines (or a truncated file from an interrupted rewrite)
    still gets a table for everything that parses.
    """
    if not os.path.exists(path):
        print(
            f"warning: {os.path.basename(path)} not found — skipping",
            file=sys.stderr,
        )
        return None
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(
            f"warning: {os.path.basename(path)} unreadable ({exc}) — skipping",
            file=sys.stderr,
        )
        return None


def report_trajectory() -> int:
    """Print one compact table over every committed BENCH file."""
    rows: list[tuple[str, str, str, str, str]] = []

    def add_profile_cases(bench: str, data: dict | None, extra=None):
        if data is None:
            return
        for profile_name, profile in sorted(data.get("profiles", {}).items()):
            for case, row in sorted(profile.get("cases", {}).items()):
                note = extra(row) if extra is not None else ""
                rows.append(
                    (
                        bench,
                        f"{case} [{profile_name}]",
                        str(row.get("work", "-")),
                        f"{row.get('seconds', 0.0):.3f}s",
                        note,
                    )
                )

    add_profile_cases("serial", _load_json(DEFAULT_BASELINE))
    add_profile_cases(
        "bitmap",
        _load_json(BITMAP_BASELINE),
        lambda row: f"reduction={row.get('reduction', 0.0):.1%}",
    )
    add_profile_cases(
        "merge",
        _load_json(MERGE_BASELINE),
        lambda row: (
            f"work {row.get('work_improvement', 0.0):+.1%}"
            f" wall {row.get('wallclock_improvement', 0.0):+.1%}"
        ),
    )
    add_profile_cases(
        "prefix",
        _load_json(PREFIX_BASELINE),
        lambda row: (
            f"candidates {row.get('candidates_prefix', 0)}"
            f" -> {row.get('candidates_stack', 0)}"
            f" ({row.get('reduction', 0.0):.1%})"
        ),
    )
    add_profile_cases(
        "mmap",
        _load_json(MMAP_BASELINE),
        lambda row: (
            f"open {row.get('open_ms', 0.0)}ms"
            f" resident {row.get('resident_bytes', 0) / 1e6:.2f}MB"
            f" / {row.get('file_bytes', 0) / 1e6:.2f}MB file"
        ),
    )
    add_profile_cases(
        "serve",
        _load_json(SERVE_BASELINE),
        lambda row: (
            f"p50 {row.get('sharded_p50_ms', 0.0)}ms"
            f" (single {row.get('single_p50_ms', 0.0)}ms)"
            f" p99 {row.get('sharded_p99_ms', 0.0)}ms"
        ),
    )
    add_profile_cases(
        "approx",
        _load_json(APPROX_BASELINE),
        lambda row: (
            f"recall={row.get('recall', 0.0):.4f}"
            f" fp={row.get('false_positives', 0)}"
            f" ratio={row.get('work_ratio', 0.0):.3f} of exact"
        ),
    )
    parallel = _load_json(PARALLEL_BASELINE)
    if parallel is not None:
        case = f"{parallel.get('algorithm')}/{parallel.get('dataset')}"
        serial = parallel.get("serial", {})
        rows.append(
            (
                "parallel",
                f"{case} [serial]",
                str(serial.get("work", "-")),
                f"{serial.get('seconds', 0.0):.3f}s",
                "",
            )
        )
        for row in parallel.get("parallel", []):
            rows.append(
                (
                    "parallel",
                    f"{case} [workers={row.get('workers')}]",
                    str(row.get("work", "-")),
                    f"{row.get('seconds', 0.0):.3f}s",
                    f"speedup={row.get('speedup', 0.0):.2f}x",
                )
            )

    if not rows:
        print("no BENCH files found at the repo root", file=sys.stderr)
        return 1
    widths = [max(len(row[i]) for row in rows) for i in range(4)]
    header = ("bench", "case", "work", "wall", "")
    widths = [max(w, len(h)) for w, h in zip(widths, header[:4])]
    print(
        f"{header[0]:<{widths[0]}}  {header[1]:<{widths[1]}}"
        f"  {header[2]:>{widths[2]}}  {header[3]:>{widths[3]}}"
    )
    for bench, case, work, wall, note in rows:
        line = (
            f"{bench:<{widths[0]}}  {case:<{widths[1]}}"
            f"  {work:>{widths[2]}}  {wall:>{widths[3]}}"
        )
        print(f"{line}  {note}" if note else line)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="quick profile only (n=500, CI)"
    )
    parser.add_argument(
        "--check", action="store_true",
        help="gate against the baseline instead of rewriting it",
    )
    parser.add_argument(
        "--bitmap", action="store_true",
        help="run the bitmap-filter matrix against BENCH_bitmap.json"
        " (each case runs unfiltered + filtered and must emit identical pairs)",
    )
    parser.add_argument(
        "--merge", action="store_true",
        help="run the merge-backend matrix against BENCH_merge.json"
        " (each case runs per backend and must emit identical pairs)",
    )
    parser.add_argument(
        "--prefix", action="store_true",
        help="run the prefix-filter-stack matrix against BENCH_prefix.json"
        " (each case runs MergeOpt, prefix-filter, and positional-filter"
        " and all three must emit identical pairs)",
    )
    parser.add_argument(
        "--serve", action="store_true",
        help="run the sharded-serving matrix against BENCH_serve.json"
        " (each case streams identical queries through the single and"
        " sharded servers and must get identical answers)",
    )
    parser.add_argument(
        "--mmap", action="store_true",
        help="run the mapped-index matrix against BENCH_mmap.json"
        " (each case joins on the in-memory, mapped, and streaming-decode"
        " substrates — matches must be bit-identical — and gates"
        " load(mmap=True) open time and post-query residency)",
    )
    parser.add_argument(
        "--approx", action="store_true",
        help="run the approximate-mode matrix against BENCH_approx.json"
        " (each case measures recall against the exact pair set,"
        " independently re-verifies every emitted pair, and gates the"
        " work ratio vs the exact positional-filter baseline)",
    )
    parser.add_argument(
        "--report", action="store_true",
        help="print a compact trajectory table across every committed"
        " BENCH file (serial/parallel/bitmap/merge/serve/approx) and"
        " exit; missing or unreadable files are skipped with a warning",
    )
    parser.add_argument("--baseline", default=None)
    parser.add_argument(
        "--output", default=None,
        help="where to write the fresh report when checking"
        " (default: BENCH_*.fresh.json beside the baseline)",
    )
    args = parser.parse_args(argv)
    if args.report:
        return report_trajectory()
    if sum(
        (args.bitmap, args.merge, args.serve, args.prefix, args.mmap, args.approx)
    ) > 1:
        parser.error(
            "--bitmap, --merge, --serve, --prefix, --mmap, and --approx"
            " are mutually exclusive"
        )
    baseline_path = args.baseline or (
        BITMAP_BASELINE
        if args.bitmap
        else MERGE_BASELINE
        if args.merge
        else SERVE_BASELINE
        if args.serve
        else PREFIX_BASELINE
        if args.prefix
        else MMAP_BASELINE
        if args.mmap
        else APPROX_BASELINE
        if args.approx
        else DEFAULT_BASELINE
    )
    checker = (
        check_bitmap
        if args.bitmap
        else check_merge
        if args.merge
        else check_serve
        if args.serve
        else check_prefix
        if args.prefix
        else check_mmap
        if args.mmap
        else check_approx
        if args.approx
        else check
    )
    fresh_name = (
        "BENCH_bitmap.fresh.json"
        if args.bitmap
        else "BENCH_merge.fresh.json"
        if args.merge
        else "BENCH_serve.fresh.json"
        if args.serve
        else "BENCH_prefix.fresh.json"
        if args.prefix
        else "BENCH_mmap.fresh.json"
        if args.mmap
        else "BENCH_approx.fresh.json"
        if args.approx
        else "BENCH_serial.fresh.json"
    )

    if args.check:
        profile = "quick" if args.quick else "full"
        fresh = run_profile(
            profile,
            bitmap=args.bitmap,
            merge=args.merge,
            serve=args.serve,
            prefix=args.prefix,
            mmap=args.mmap,
            approx=args.approx,
        )
        if not os.path.exists(baseline_path):
            print(f"FAIL: no committed baseline at {baseline_path}", file=sys.stderr)
            return 2
        with open(baseline_path, encoding="utf-8") as handle:
            baseline = json.load(handle)
        output = args.output or os.path.join(
            os.path.dirname(baseline_path) or ".", fresh_name
        )
        with open(output, "w", encoding="utf-8") as handle:
            json.dump(
                _report_shell(
                    {profile: fresh},
                    bitmap=args.bitmap, merge=args.merge,
                    serve=args.serve, prefix=args.prefix, mmap=args.mmap,
                    approx=args.approx,
                ),
                handle, indent=2, sort_keys=True,
            )
            handle.write("\n")
        failures = checker(fresh, baseline, profile)
        if failures:
            print(
                f"PERF GATE FAILED ({len(failures)} regression(s)):", file=sys.stderr
            )
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        print("perf gate passed: work counters at or below committed baseline")
        return 0

    # Baseline (re)generation: quick-only if asked, else both profiles.
    names = ["quick"] if args.quick else ["quick", "full"]
    report = _report_shell(
        {
            name: run_profile(
                name,
                bitmap=args.bitmap,
                merge=args.merge,
                serve=args.serve,
                prefix=args.prefix,
                mmap=args.mmap,
                approx=args.approx,
            )
            for name in names
        },
        bitmap=args.bitmap,
        merge=args.merge,
        serve=args.serve,
        prefix=args.prefix,
        mmap=args.mmap,
        approx=args.approx,
    )
    output = args.output or baseline_path
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"baseline written to {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
