"""Table 1: similarity functions with average set size and #elements.

Paper values (250k citations / 500k addresses):

    Citation All-words    avg 24   70000 elements
    Citation All-3grams   avg 127  29000 elements
    Address  All-3grams   avg 47   37000 elements
    Address  Name-3grams  avg 16   14000 elements

Our corpora are scaled down, so element counts shrink with n; the
averages should land near the paper's.
"""

import pytest

from harness import address_3grams, address_names, citation_3grams, citation_words

N = 3000

FUNCTIONS = [
    ("citation all-words", citation_words, 24),
    ("citation all-3grams", citation_3grams, 127),
    ("address all-3grams", address_3grams, 47),
    ("address name-3grams", address_names, 16),
]


@pytest.mark.parametrize("label,builder,paper_avg", FUNCTIONS)
def test_table1_similarity_function_stats(benchmark, report, label, builder, paper_avg):
    data = benchmark.pedantic(builder, args=(N,), rounds=1, iterations=1)
    report(
        "table1 similarity functions",
        label,
        n=len(data),
        avg_set_size=data.average_set_size(),
        paper_avg=paper_avg,
        elements=data.n_distinct_tokens(),
    )
    assert paper_avg * 0.5 <= data.average_set_size() <= paper_avg * 1.6
