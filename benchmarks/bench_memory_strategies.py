"""Three answers to "the index does not fit in memory", compared.

The paper's own answer is partitioning (ClusterMem, §4); it notes two
orthogonal IR directions (§4/§6): compressing the in-memory index, and
keeping the index on disk. All three are implemented in this repo —
this bench runs them on the same workload so the trade-off triangle
(memory footprint vs wall time vs disk traffic) is visible in one
table. The in-memory Probe-Cluster run anchors the comparison.
"""

from harness import citation_words, run_join
from repro import ClusterMemJoin, MemoryBudget, OverlapPredicate
from repro.compression.compressed_join import CompressedProbeJoin
from repro.storage.disk_index import DiskProbeJoin

N = 2000
THRESHOLD = 15
EXPERIMENT = "memory strategies: partition vs compress vs disk (citation n=2000, T=15)"


def test_memory_strategies(benchmark, report):
    data = citation_words(N)
    predicate = OverlapPredicate(THRESHOLD)

    def run_all():
        results = {}
        results["in-memory probe-cluster"] = run_join("probe-cluster", data, predicate)
        results["clustermem @10% budget"] = ClusterMemJoin(
            MemoryBudget.fraction_of_full(data, 0.1)
        ).join(data, predicate)
        results["compressed index (varbyte)"] = CompressedProbeJoin().join(data, predicate)
        results["disk-resident index"] = DiskProbeJoin().join(data, predicate)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    reference = results["in-memory probe-cluster"].pair_set()
    full_entries = data.total_word_occurrences()
    for label, result in results.items():
        assert result.pair_set() == reference, label
        extra = result.counters.extra
        if label.startswith("clustermem"):
            memory_note = f"{extra['phase1_index_entries']}/{full_entries} entries"
        elif label.startswith("compressed"):
            memory_note = (
                f"{extra['index_bytes_compressed']}B vs {extra['index_bytes_plain']}B"
            )
        elif label.startswith("disk"):
            memory_note = f"directory-only; {extra['disk_bytes_read']}B streamed"
        else:
            memory_note = f"{result.counters.index_entries} entries resident"
        report(
            EXPERIMENT,
            label,
            seconds=result.elapsed_seconds,
            memory=memory_note,
            pairs=len(result.pairs),
        )
